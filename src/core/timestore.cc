#include "core/timestore.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/query_stats.h"
#include "obs/trace.h"
#include "obs/workload_registry.h"
#include "storage/file.h"
#include "util/coding.h"
#include "util/logging.h"

namespace aion::core {

using storage::BpTree;
using storage::RecordInfo;
using storage::RecordLoc;
using storage::SegmentedLog;
using util::DecodeBigEndian64;
using util::DecodeFixed64;
using util::PutBigEndian64;
using util::PutFixed64;
using util::Slice;

namespace {

std::string TimeKey(Timestamp ts, uint64_t seq) {
  std::string key;
  PutBigEndian64(&key, ts);
  PutBigEndian64(&key, seq);
  return key;
}

std::string SnapshotKey(Timestamp ts) {
  std::string key;
  PutBigEndian64(&key, ts);
  return key;
}

/// Time-index values address records as (segment id, offset in segment).
std::string LocValue(const RecordLoc& loc) {
  std::string value;
  PutFixed64(&value, loc.segment_id);
  PutFixed64(&value, loc.offset);
  return value;
}

RecordLoc DecodeLoc(Slice value) {
  RecordLoc loc;
  loc.segment_id = DecodeFixed64(value.data());
  loc.offset = DecodeFixed64(value.data() + 8);
  return loc;
}

}  // namespace

void CollectBloomKeys(const std::vector<GraphUpdate>& updates,
                      std::vector<uint64_t>* keys) {
  for (const GraphUpdate& u : updates) {
    if (graph::IsNodeOp(u.op)) {
      keys->push_back(NodeBloomKey(u.id));
      continue;
    }
    keys->push_back(RelBloomKey(u.id));
    // Endpoint nodes see this relationship in expansion queries.
    if (u.src != graph::kInvalidNodeId) keys->push_back(NodeBloomKey(u.src));
    if (u.tgt != graph::kInvalidNodeId) keys->push_back(NodeBloomKey(u.tgt));
  }
}

StatusOr<std::unique_ptr<TimeStore>> TimeStore::Open(const Options& options,
                                                     GraphStore* graph_store) {
  AION_RETURN_IF_ERROR(storage::CreateDirIfMissing(options.dir));
  AION_RETURN_IF_ERROR(
      storage::CreateDirIfMissing(options.dir + "/snapshots"));
  std::unique_ptr<TimeStore> store(new TimeStore());
  store->options_ = options;
  store->graph_store_ = graph_store;

  SegmentedLog::Options seg_options;
  seg_options.dir = options.dir + "/segments";
  seg_options.target_segment_bytes = options.target_segment_bytes;
  seg_options.bloom_bits = options.bloom_bits;
  seg_options.probe = [](Slice payload, uint64_t* ts,
                         std::vector<uint64_t>* keys) -> Status {
    AION_ASSIGN_OR_RETURN(std::vector<GraphUpdate> updates,
                          graph::DecodeUpdateBatch(payload));
    *ts = updates.empty() ? 0 : updates.front().ts;
    CollectBloomKeys(updates, keys);
    return Status::OK();
  };
  AION_ASSIGN_OR_RETURN(store->segments_,
                        SegmentedLog::Open(std::move(seg_options)));

  BpTree::Options tree_options;
  tree_options.cache_pages = options.index_cache_pages;
  tree_options.metrics = options.metrics;
  AION_ASSIGN_OR_RETURN(
      store->time_index_,
      BpTree::Open(options.dir + "/time_index.bpt", tree_options));
  AION_ASSIGN_OR_RETURN(
      store->snapshot_index_,
      BpTree::Open(options.dir + "/snapshot_index.bpt", tree_options));
  if (options.metrics != nullptr) {
    store->metric_appends_ = options.metrics->counter("timestore.appends");
    store->metric_batch_appends_ =
        options.metrics->counter("timestore.batch_appends");
    store->metric_snapshots_written_ =
        options.metrics->counter("timestore.snapshots_written");
    store->metric_snapshots_due_ =
        options.metrics->counter("timestore.snapshot_policy_due");
    store->metric_replayed_updates_ =
        options.metrics->counter("timestore.replayed_updates");
    store->metric_parallel_scans_ =
        options.metrics->counter("timestore.parallel_scans");
    store->metric_segments_skipped_ =
        options.metrics->counter("timestore.segments_skipped");
    store->gauge_parallel_permille_ =
        options.metrics->gauge("timestore.replay_parallel_permille");
    store->metric_snapshot_build_ =
        options.metrics->histogram("timestore.snapshot_build_nanos");
    store->metric_replay_ =
        options.metrics->histogram("timestore.replay_nanos");
  }

  AION_RETURN_IF_ERROR(store->RecoverIndexes());

  // Recover snapshot accounting.
  auto snap_it = store->snapshot_index_->NewIterator();
  for (snap_it.SeekToFirst(); snap_it.Valid(); snap_it.Next()) {
    store->last_snapshot_ts_ = DecodeBigEndian64(snap_it.key().data());
    auto size = storage::FileSize(snap_it.value().ToString());
    if (size.ok()) {
      store->snapshot_bytes_.fetch_add(*size, std::memory_order_relaxed);
    }
    ++store->snapshot_counter_;
  }
  AION_RETURN_IF_ERROR(snap_it.status());
  return store;
}

Status TimeStore::RecoverIndexes() {
  // A crash between compaction's manifest swap and its index deletions
  // leaves (ts, seq) entries pointing into dropped segments; a crash
  // mid-append can leave an index tail pointing past the recovered end of
  // the active segment. Both kinds are dangling: reap them.
  const Timestamp floor = segments_->floor_ts();
  const uint64_t active_id = segments_->active_segment_id();
  AION_ASSIGN_OR_RETURN(std::shared_ptr<storage::LogFile> active,
                        segments_->Handle(active_id));
  const uint64_t active_end = active->end_offset();
  std::vector<std::string> dead;
  {
    auto it = time_index_->NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      const Timestamp ts = DecodeBigEndian64(it.key().data());
      const RecordLoc loc = DecodeLoc(it.value());
      const bool dangling =
          ts < floor || !segments_->HasSegment(loc.segment_id) ||
          (loc.segment_id == active_id && loc.offset >= active_end);
      if (dangling) dead.push_back(it.key().ToString());
    }
    AION_RETURN_IF_ERROR(it.status());
  }
  for (const std::string& key : dead) {
    AION_RETURN_IF_ERROR(time_index_->Delete(key));
  }

  // Reap snapshot files a crash orphaned between the file write and its
  // index insert. Index entries are authoritative; unreferenced files are
  // garbage.
  std::unordered_set<std::string> referenced;
  {
    auto it = snapshot_index_->NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      referenced.insert(it.value().ToString());
    }
    AION_RETURN_IF_ERROR(it.status());
  }
  const std::string snap_dir = options_.dir + "/snapshots";
  AION_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        storage::ListDir(snap_dir));
  for (const std::string& name : names) {
    const std::string path = snap_dir + "/" + name;
    if (referenced.count(path) == 0) {
      AION_RETURN_IF_ERROR(storage::RemoveFileIfExists(path));
    }
  }

  // Recover clock/sequence from the (now clean) tail of the time index.
  auto it = time_index_->NewIterator();
  it.SeekToLast();
  if (it.Valid()) {
    last_ts_.store(DecodeBigEndian64(it.key().data()),
                   std::memory_order_relaxed);
    seq_ = DecodeBigEndian64(it.key().data() + 8) + 1;
  }
  AION_RETURN_IF_ERROR(it.status());
  return Status::OK();
}

Status TimeStore::Append(Timestamp ts,
                         const std::vector<GraphUpdate>& updates,
                         bool* snapshot_due) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ts < last_ts_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("timestamps must be monotonic");
  }
  std::string payload;
  graph::EncodeUpdateBatch(updates, &payload);
  RecordInfo info;
  info.ts = ts;
  CollectBloomKeys(updates, &info.keys);
  AION_ASSIGN_OR_RETURN(RecordLoc loc,
                        segments_->Append(Slice(payload), info));
  AION_RETURN_IF_ERROR(time_index_->Put(TimeKey(ts, seq_), LocValue(loc)));
  ++seq_;
  last_ts_.store(ts, std::memory_order_release);
  num_updates_.fetch_add(updates.size(), std::memory_order_relaxed);
  const uint64_t ops =
      ops_since_snapshot_.fetch_add(updates.size(),
                                    std::memory_order_relaxed) +
      updates.size();
  if (metric_appends_ != nullptr) metric_appends_->Add();
  if (snapshot_due != nullptr) {
    switch (options_.policy.kind) {
      case SnapshotPolicy::Kind::kOperationBased:
        *snapshot_due = ops >= options_.policy.every;
        break;
      case SnapshotPolicy::Kind::kTimeBased:
        *snapshot_due = ts - last_snapshot_ts_ >= options_.policy.every;
        break;
      case SnapshotPolicy::Kind::kDisabled:
        *snapshot_due = false;
        break;
    }
    if (*snapshot_due && metric_snapshots_due_ != nullptr) {
      metric_snapshots_due_->Add();
    }
  }
  return Status::OK();
}

Status TimeStore::AppendBatch(const std::vector<WriteBatch::TxnGroup>& groups,
                              bool* snapshot_due) {
  if (groups.empty()) {
    if (snapshot_due != nullptr) *snapshot_due = false;
    return Status::OK();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  Timestamp prev = last_ts_.load(std::memory_order_relaxed);
  for (const WriteBatch::TxnGroup& g : groups) {
    if (g.ts < prev) {
      return Status::InvalidArgument("timestamps must be monotonic");
    }
    prev = g.ts;
  }
  std::vector<std::string> payloads;
  std::vector<RecordInfo> infos;
  payloads.reserve(groups.size());
  infos.reserve(groups.size());
  size_t total_updates = 0;
  for (const WriteBatch::TxnGroup& g : groups) {
    std::string payload;
    graph::EncodeUpdateBatch(g.updates, &payload);
    payloads.push_back(std::move(payload));
    RecordInfo info;
    info.ts = g.ts;
    CollectBloomKeys(g.updates, &info.keys);
    infos.push_back(std::move(info));
    total_updates += g.updates.size();
  }
  std::vector<RecordLoc> locs;
  AION_RETURN_IF_ERROR(segments_->AppendBatch(payloads, infos, &locs));
  // (ts, seq) keys are strictly increasing (seq always advances), so this
  // takes AppendSorted's amortized tail-load path.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    entries.emplace_back(TimeKey(groups[i].ts, seq_), LocValue(locs[i]));
    ++seq_;
  }
  AION_RETURN_IF_ERROR(time_index_->AppendSorted(entries));
  const Timestamp batch_last = groups.back().ts;
  last_ts_.store(batch_last, std::memory_order_release);
  num_updates_.fetch_add(total_updates, std::memory_order_relaxed);
  const uint64_t ops =
      ops_since_snapshot_.fetch_add(total_updates,
                                    std::memory_order_relaxed) +
      total_updates;
  if (metric_appends_ != nullptr) metric_appends_->Add(groups.size());
  if (metric_batch_appends_ != nullptr) metric_batch_appends_->Add();
  if (snapshot_due != nullptr) {
    switch (options_.policy.kind) {
      case SnapshotPolicy::Kind::kOperationBased:
        *snapshot_due = ops >= options_.policy.every;
        break;
      case SnapshotPolicy::Kind::kTimeBased:
        *snapshot_due = batch_last - last_snapshot_ts_ >=
                        options_.policy.every;
        break;
      case SnapshotPolicy::Kind::kDisabled:
        *snapshot_due = false;
        break;
    }
    if (*snapshot_due && metric_snapshots_due_ != nullptr) {
      metric_snapshots_due_->Add();
    }
  }
  return Status::OK();
}

Status TimeStore::WriteSnapshot(Timestamp ts,
                                const graph::MemoryGraph& graph) {
  AION_TRACE_SPAN("timestore.snapshot_build", metric_snapshot_build_);
  if (metric_snapshots_written_ != nullptr) metric_snapshots_written_->Add();
  std::string payload;
  graph.EncodeTo(&payload);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const std::string path = options_.dir + "/snapshots/snap_" +
                           std::to_string(ts) + "_" +
                           std::to_string(snapshot_counter_++);
  AION_ASSIGN_OR_RETURN(auto file, storage::RandomAccessFile::Open(path));
  AION_RETURN_IF_ERROR(file->Write(0, payload.data(), payload.size()));
  AION_RETURN_IF_ERROR(snapshot_index_->Put(SnapshotKey(ts), path));
  snapshot_bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  last_snapshot_ts_ = ts;
  ops_since_snapshot_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Retention / compaction
// ---------------------------------------------------------------------

Status TimeStore::SealColdActive(Timestamp floor) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return segments_->SealActiveIfColderThan(floor);
}

Status TimeStore::CompactUpTo(Timestamp floor, CompactionResult* result) {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  result->floor_ts = segments_->floor_ts();
  if (floor == 0 || floor <= result->floor_ts) return Status::OK();

  // A stalled ingest can leave cold records in the active segment; seal it
  // so they become droppable too.
  AION_RETURN_IF_ERROR(SealColdActive(floor));

  const std::vector<uint64_t> victims = segments_->SealedBefore(floor);
  if (victims.empty()) return Status::OK();

  // Step 1 — make the floor snapshot durable before anything is dropped.
  // The snapshot at exactly `floor` subsumes every victim record; once it
  // (and its index entry) hit disk, dropping the segments loses nothing.
  const bool have_floor_snap = [&] {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return snapshot_index_->Get(SnapshotKey(floor)).ok();
  }();
  if (!have_floor_snap) {
    AION_ASSIGN_OR_RETURN(std::unique_ptr<graph::MemoryGraph> graph,
                          MaterializeGraphAt(floor));
    std::shared_ptr<const graph::MemoryGraph> shared(std::move(graph));
    AION_RETURN_IF_ERROR(WriteSnapshot(floor, *shared));
    graph_store_->Put(floor, shared);
  }
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    AION_RETURN_IF_ERROR(snapshot_index_->Flush());
    AION_RETURN_IF_ERROR(snapshot_index_->Sync());
  }
  if (options_.crash_point == CompactionCrashPoint::kAfterSnapshotWrite) {
    // Simulated crash: the snapshot exists but nothing was dropped and the
    // floor did not move. The next round simply redoes the swap.
    return Status::OK();
  }

  // Step 2 — the atomic swap. Under the exclusive latch (no scan can be
  // between its index walk and handle pinning): commit the manifest
  // without the victims, then delete their (ts, seq) index entries.
  std::unique_lock<std::shared_mutex> lock(mu_);
  const std::unordered_set<uint64_t> victim_set(victims.begin(),
                                                victims.end());
  uint64_t victim_bytes = 0;
  for (const storage::SegmentMeta& meta : segments_->SealedSegments()) {
    if (victim_set.count(meta.id) > 0) victim_bytes += meta.bytes;
  }
  std::vector<std::string> dead;
  {
    auto it = time_index_->NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      const Timestamp ts = DecodeBigEndian64(it.key().data());
      if (ts >= floor) break;
      if (victim_set.count(DecodeLoc(it.value()).segment_id) > 0) {
        dead.push_back(it.key().ToString());
      }
    }
    AION_RETURN_IF_ERROR(it.status());
  }
  const bool unlink =
      options_.crash_point != CompactionCrashPoint::kAfterManifestSwap;
  AION_RETURN_IF_ERROR(segments_->DropSegments(victims, floor, unlink));
  if (options_.crash_point == CompactionCrashPoint::kAfterManifestSwap) {
    // Simulated crash: the manifest no longer references the victims but
    // their index entries dangle and their files remain. Reopen reaps both.
    return Status::OK();
  }
  for (const std::string& key : dead) {
    AION_RETURN_IF_ERROR(time_index_->Delete(key));
  }

  result->segments_dropped += victims.size();
  result->records_dropped += dead.size();
  result->bytes_reclaimed += victim_bytes;
  result->floor_ts = floor;
  total_segments_dropped_.fetch_add(victims.size(),
                                    std::memory_order_relaxed);
  total_records_dropped_.fetch_add(dead.size(), std::memory_order_relaxed);
  total_bytes_reclaimed_.fetch_add(victim_bytes, std::memory_order_relaxed);
  return Status::OK();
}

Status TimeStore::GcSnapshots(uint64_t keep_replay_records,
                              CompactionResult* result) {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  const Timestamp floor = segments_->floor_ts();
  if (keep_replay_records == 0 && floor == 0) return Status::OK();

  std::unique_lock<std::shared_mutex> lock(mu_);
  struct Snap {
    Timestamp ts;
    std::string path;
  };
  std::vector<Snap> snaps;
  {
    auto it = snapshot_index_->NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      snaps.push_back(
          Snap{DecodeBigEndian64(it.key().data()), it.value().ToString()});
    }
    AION_RETURN_IF_ERROR(it.status());
  }
  if (snaps.empty()) return Status::OK();

  // Counts time-index records in (after, upto], stopping early once past
  // `limit` (the cost model only needs "cheap or not").
  auto replay_cost = [&](Timestamp after, Timestamp upto,
                         uint64_t limit) -> StatusOr<uint64_t> {
    uint64_t count = 0;
    auto it = time_index_->NewIterator();
    for (it.Seek(TimeKey(after + 1, 0)); it.Valid(); it.Next()) {
      if (DecodeBigEndian64(it.key().data()) > upto) break;
      if (++count > limit) break;
    }
    AION_RETURN_IF_ERROR(it.status());
    return count;
  };

  std::vector<Snap> drop;
  Timestamp prev_kept = 0;
  bool have_prev = false;
  for (size_t i = 0; i < snaps.size(); ++i) {
    const Snap& s = snaps[i];
    // Below the floor the log records are gone: the snapshot can no longer
    // seed a correct replay and must go. The floor snapshot itself is the
    // permanent base for everything above it; the newest snapshot bounds
    // worst-case replay for fresh queries. Both are always kept.
    if (s.ts < floor) {
      drop.push_back(s);
      continue;
    }
    const bool is_floor = s.ts == floor;
    const bool is_newest = i + 1 == snaps.size();
    if (is_floor || is_newest || !have_prev ||
        keep_replay_records == 0) {
      prev_kept = s.ts;
      have_prev = true;
      continue;
    }
    AION_ASSIGN_OR_RETURN(uint64_t cost,
                          replay_cost(prev_kept, s.ts, keep_replay_records));
    if (cost <= keep_replay_records) {
      drop.push_back(s);  // cheaper to rebuild from prev_kept than to keep
    } else {
      prev_kept = s.ts;
    }
  }

  for (const Snap& s : drop) {
    AION_RETURN_IF_ERROR(snapshot_index_->Delete(SnapshotKey(s.ts)));
    auto size = storage::FileSize(s.path);
    AION_RETURN_IF_ERROR(storage::RemoveFileIfExists(s.path));
    if (size.ok()) {
      snapshot_bytes_.fetch_sub(std::min(*size, SnapshotBytes()),
                                std::memory_order_relaxed);
      result->bytes_reclaimed += *size;
      total_bytes_reclaimed_.fetch_add(*size, std::memory_order_relaxed);
    }
  }
  result->snapshots_dropped += drop.size();
  total_snapshots_dropped_.fetch_add(drop.size(), std::memory_order_relaxed);
  return Status::OK();
}

uint64_t TimeStore::NumSnapshots() const {
  return snapshot_index_->num_entries();
}

// ---------------------------------------------------------------------
// Retrieval
// ---------------------------------------------------------------------

StatusOr<std::vector<GraphUpdate>> TimeStore::GetDiff(Timestamp start,
                                                      Timestamp end) const {
  // Half-open [start, end): the common interval convention of the temporal
  // API. end is exclusive, so the last included timestamp is end - 1.
  if (end <= start) return std::vector<GraphUpdate>{};
  return ScanUpdates(start, end - 1);
}

StatusOr<std::vector<GraphUpdate>> TimeStore::ReplayRange(Timestamp base_ts,
                                                          Timestamp t) const {
  // (base_ts, t]: forward replay from a base snapshot *at* base_ts (whose
  // state already includes base_ts's updates) up to and including t.
  if (t <= base_ts) return std::vector<GraphUpdate>{};
  return ScanUpdates(base_ts + 1, t);
}

StatusOr<TimeStore::SeededUpdates> TimeStore::SeededReplay(
    Timestamp t, const std::vector<uint64_t>* entity_filter) {
  SeededUpdates out;
  const Timestamp floor = segments_->floor_ts();
  if (floor == 0 || t < floor) {
    // Nothing compacted (or the caller is below the floor, which the
    // retention gate rejects upstream): full history from the empty graph.
    if (t >= 1) {
      AION_ASSIGN_OR_RETURN(out.updates, ScanUpdates(1, t, entity_filter));
    }
    return out;
  }
  // Records below the floor are gone; the floor snapshot stands in for
  // them. It always exists: CompactUpTo makes it durable before dropping.
  AION_ASSIGN_OR_RETURN(out.base, LoadSnapshotAt(floor));
  out.base_ts = floor;
  if (t > floor) {
    AION_ASSIGN_OR_RETURN(out.updates,
                          ScanUpdates(floor + 1, t, entity_filter));
  }
  return out;
}

StatusOr<std::vector<GraphUpdate>> TimeStore::ScanUpdates(
    Timestamp first_ts, Timestamp last_ts,
    const std::vector<uint64_t>* entity_filter) const {
  // Phase 1 — index walk under the shared latch: collect the record
  // locations of every entry in range and pin a handle per segment. The
  // latch excludes a concurrent compaction swap, and a pinned handle keeps
  // its file readable even if the segment is dropped and unlinked right
  // after the latch is released. Fence keys and bloom filters prune whole
  // segments when the caller asked about specific entities.
  std::vector<RecordLoc> locs;
  std::unordered_map<uint64_t, std::shared_ptr<storage::LogFile>> handles;
  uint64_t skipped = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::unordered_map<uint64_t, bool> include;
    auto it = time_index_->NewIterator();
    for (it.Seek(TimeKey(first_ts, 0)); it.Valid(); it.Next()) {
      // Cooperative kill check once per indexed record, so a killed query
      // parked inside a large scan stops within one row boundary (and
      // releases the shared latch promptly).
      if (obs::CancellationRequested()) {
        return Status::Cancelled("query killed");
      }
      const Timestamp ts = DecodeBigEndian64(it.key().data());
      if (ts > last_ts) break;
      const RecordLoc loc = DecodeLoc(it.value());
      auto cached = include.find(loc.segment_id);
      if (cached == include.end()) {
        const bool in = segments_->MightContain(loc.segment_id, first_ts,
                                                last_ts, entity_filter);
        cached = include.emplace(loc.segment_id, in).first;
        if (!in) ++skipped;
      }
      if (!cached->second) continue;
      if (handles.count(loc.segment_id) == 0) {
        AION_ASSIGN_OR_RETURN(handles[loc.segment_id],
                              segments_->Handle(loc.segment_id));
      }
      locs.push_back(loc);
    }
    AION_RETURN_IF_ERROR(it.status());
  }
  if (skipped > 0 && metric_segments_skipped_ != nullptr) {
    metric_segments_skipped_->Add(skipped);
  }
  if (obs::CancellationRequested()) {
    return Status::Cancelled("query killed");
  }
  if (locs.empty()) return std::vector<GraphUpdate>{};

  // Phase 2 — latch-free read + decode. Indexed records are immutable (the
  // log is append-only), so no latch is needed; pread is position-safe.
  std::vector<std::vector<GraphUpdate>> parts(locs.size());
  auto decode_one = [&](size_t i) -> Status {
    std::string record;
    AION_RETURN_IF_ERROR(
        handles[locs[i].segment_id]->Read(locs[i].offset, &record));
    AION_ASSIGN_OR_RETURN(parts[i], graph::DecodeUpdateBatch(record));
    return Status::OK();
  };
  const bool parallel =
      options_.replay_pool != nullptr &&
      options_.replay_pool->num_threads() > 1 &&
      locs.size() >= options_.parallel_replay_threshold;
  if (parallel) {
    std::vector<Status> statuses(locs.size());
    options_.replay_pool->ParallelFor(
        locs.size(), [&](size_t i) { statuses[i] = decode_one(i); });
    for (const Status& s : statuses) AION_RETURN_IF_ERROR(s);
    if (metric_parallel_scans_ != nullptr) metric_parallel_scans_->Add();
    records_scanned_parallel_.fetch_add(locs.size(),
                                        std::memory_order_relaxed);
  } else {
    // ParallelFor workers do not see this thread's ActiveQueryScope, so the
    // parallel path runs a phase to completion; the sequential path checks
    // per record.
    for (size_t i = 0; i < locs.size(); ++i) {
      if (obs::CancellationRequested()) {
        return Status::Cancelled("query killed");
      }
      AION_RETURN_IF_ERROR(decode_one(i));
    }
  }
  const uint64_t total =
      records_scanned_.fetch_add(locs.size(), std::memory_order_relaxed) +
      locs.size();
  if (gauge_parallel_permille_ != nullptr && total > 0) {
    gauge_parallel_permille_->Set(static_cast<int64_t>(
        records_scanned_parallel_.load(std::memory_order_relaxed) * 1000 /
        total));
  }

  // Deterministic merge: concatenation in index order reproduces the exact
  // (ts, seq) sequential order, whichever worker decoded which partition.
  size_t total_updates = 0;
  for (const auto& part : parts) total_updates += part.size();
  std::vector<GraphUpdate> diff;
  diff.reserve(total_updates);
  for (auto& part : parts) {
    diff.insert(diff.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return diff;
}

StatusOr<std::shared_ptr<const graph::MemoryGraph>> TimeStore::FindBase(
    Timestamp t, Timestamp* base_ts) {
  // Memory first.
  Timestamp mem_ts = 0;
  std::shared_ptr<const graph::MemoryGraph> mem =
      graph_store_->ClosestAtOrBefore(t, &mem_ts);

  // Disk: largest snapshot timestamp <= t.
  Timestamp disk_ts = 0;
  std::string disk_path;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = snapshot_index_->NewIterator();
    it.SeekForPrev(SnapshotKey(t));
    if (it.Valid()) {
      disk_ts = DecodeBigEndian64(it.key().data());
      disk_path = it.value().ToString();
    }
    AION_RETURN_IF_ERROR(it.status());
  }

  // Once anything was compacted a floor snapshot exists, so for t >= floor
  // the disk pick is >= floor — and the memory pick only wins when it is
  // at least as fresh, which keeps every replay range above the floor
  // (i.e. fully backed by retained log records).
  if (mem != nullptr && (disk_path.empty() || mem_ts >= disk_ts)) {
    *base_ts = mem_ts;
    return mem;
  }
  if (!disk_path.empty()) {
    AION_ASSIGN_OR_RETURN(auto snapshot, LoadSnapshotFile(disk_path));
    *base_ts = disk_ts;
    // Cache the loaded snapshot for subsequent queries.
    graph_store_->Put(disk_ts, snapshot);
    return snapshot;
  }
  *base_ts = 0;
  return std::shared_ptr<const graph::MemoryGraph>(nullptr);
}

StatusOr<std::shared_ptr<const graph::MemoryGraph>> TimeStore::LoadSnapshotAt(
    Timestamp ts) {
  // The in-memory cache may already hold the exact state.
  Timestamp mem_ts = 0;
  std::shared_ptr<const graph::MemoryGraph> mem =
      graph_store_->ClosestAtOrBefore(ts, &mem_ts);
  if (mem != nullptr && mem_ts == ts) return mem;
  std::string path;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    AION_ASSIGN_OR_RETURN(path, snapshot_index_->Get(SnapshotKey(ts)));
  }
  AION_ASSIGN_OR_RETURN(auto snapshot, LoadSnapshotFile(path));
  graph_store_->Put(ts, snapshot);
  return snapshot;
}

StatusOr<std::shared_ptr<const graph::MemoryGraph>>
TimeStore::LoadSnapshotFile(const std::string& path) const {
  AION_ASSIGN_OR_RETURN(auto file, storage::RandomAccessFile::Open(path));
  std::string payload(file->size(), '\0');
  AION_RETURN_IF_ERROR(file->Read(0, payload.size(), payload.data()));
  AION_ASSIGN_OR_RETURN(auto graph,
                        graph::MemoryGraph::DecodeFrom(Slice(payload)));
  return std::shared_ptr<const graph::MemoryGraph>(std::move(graph));
}

StatusOr<std::shared_ptr<const graph::GraphView>> TimeStore::GetGraphAt(
    Timestamp t) {
  AION_TRACE_SPAN("timestore.replay", metric_replay_);
  Timestamp base_ts = 0;
  AION_ASSIGN_OR_RETURN(auto base, FindBase(t, &base_ts));
  if (base == nullptr) {
    base = std::make_shared<const graph::MemoryGraph>();
    base_ts = 0;
  }
  AION_ASSIGN_OR_RETURN(std::vector<GraphUpdate> diff,
                        ReplayRange(base_ts, t));
  if (metric_replayed_updates_ != nullptr) {
    metric_replayed_updates_->Add(diff.size());
    obs::TickRecordsReplayed(diff.size());
  }
  if (diff.empty()) {
    return std::static_pointer_cast<const graph::GraphView>(base);
  }
  auto cow = std::make_shared<graph::CowGraph>(base);
  AION_RETURN_IF_ERROR(cow->ApplyAll(diff));
  return std::static_pointer_cast<const graph::GraphView>(cow);
}

StatusOr<std::unique_ptr<graph::MemoryGraph>> TimeStore::MaterializeGraphAt(
    Timestamp t) {
  AION_TRACE_SPAN("timestore.replay", metric_replay_);
  Timestamp base_ts = 0;
  AION_ASSIGN_OR_RETURN(auto base, FindBase(t, &base_ts));
  std::unique_ptr<graph::MemoryGraph> graph;
  if (base == nullptr) {
    graph = std::make_unique<graph::MemoryGraph>();
    base_ts = 0;
  } else {
    graph = base->Clone();
  }
  AION_ASSIGN_OR_RETURN(std::vector<GraphUpdate> diff,
                        ReplayRange(base_ts, t));
  if (metric_replayed_updates_ != nullptr) {
    metric_replayed_updates_->Add(diff.size());
    obs::TickRecordsReplayed(diff.size());
  }
  AION_RETURN_IF_ERROR(graph->ApplyAll(diff));
  return graph;
}

uint64_t TimeStore::SizeBytes() const {
  return segments_->SizeBytes() + time_index_->SizeBytes() +
         snapshot_index_->SizeBytes() +
         snapshot_bytes_.load(std::memory_order_relaxed);
}

Status TimeStore::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  AION_RETURN_IF_ERROR(time_index_->Flush());
  AION_RETURN_IF_ERROR(snapshot_index_->Flush());
  return Status::OK();
}

}  // namespace aion::core
