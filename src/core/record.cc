#include "core/record.h"

#include "util/coding.h"

namespace aion::core {

using graph::PropertyType;
using graph::PropertyValue;
using storage::StringRef;
using util::DecodeFixed32;
using util::GetVarint64;
using util::PutFixed32;
using util::PutVarint64;
using util::Slice;

namespace {

// Header byte: bits 0-1 entity type, bit 2 deleted, bit 3 delta.
constexpr uint8_t kTypeMask = 0x03;
constexpr uint8_t kDeletedBit = 0x04;
constexpr uint8_t kDeltaBit = 0x08;

// Label reference: MSB = removed.
constexpr uint32_t kLabelRemovedBit = 0x80000000u;
// Property key reference: bit 31 = removed, bits 30..28 = PropertyType.
constexpr uint32_t kPropRemovedBit = 0x80000000u;
constexpr uint32_t kPropTypeShift = 28;
constexpr uint32_t kPropRefMask = 0x0fffffffu;

}  // namespace

StatusOr<uint32_t> RecordCodec::InternChecked(const std::string& s) const {
  AION_ASSIGN_OR_RETURN(StringRef ref, pool_->Intern(s));
  if (ref > kPropRefMask) {
    return Status::Internal("string pool overflow: ref exceeds 28 bits");
  }
  return ref;
}

Status RecordCodec::Encode(const TemporalRecord& r, std::string* dst) const {
  uint8_t header = static_cast<uint8_t>(r.entity_type) & kTypeMask;
  if (r.deleted) header |= kDeletedBit;
  if (r.delta) header |= kDeltaBit;
  dst->push_back(static_cast<char>(header));
  PutVarint64(dst, r.id);
  PutVarint64(dst, r.ts);

  if (r.entity_type == EntityType::kRelationship ||
      r.entity_type == EntityType::kNeighbourhood) {
    PutVarint64(dst, r.src);
    PutVarint64(dst, r.tgt);
  }
  if (r.deleted) return Status::OK();  // id + timestamp only
  if (r.entity_type == EntityType::kNeighbourhood) return Status::OK();

  if (r.entity_type == EntityType::kRelationship) {
    AION_ASSIGN_OR_RETURN(uint32_t type_ref, InternChecked(r.rel_type));
    PutFixed32(dst, type_ref);
  }

  if (r.entity_type == EntityType::kNode) {
    // Label count first, then label references (Sec 4.2).
    PutVarint64(dst, r.labels.size());
    for (const LabelEntry& l : r.labels) {
      AION_ASSIGN_OR_RETURN(uint32_t ref, InternChecked(l.label));
      if (l.removed) ref |= kLabelRemovedBit;
      PutFixed32(dst, ref);
    }
  }

  PutVarint64(dst, r.props.size());
  for (const PropEntry& p : r.props) {
    AION_ASSIGN_OR_RETURN(uint32_t key_ref, InternChecked(p.key));
    const PropertyType type =
        p.removed ? PropertyType::kNull : p.value.type();
    uint32_t tagged = key_ref |
                      (static_cast<uint32_t>(type) << kPropTypeShift);
    if (p.removed) tagged |= kPropRemovedBit;
    PutFixed32(dst, tagged);
    if (p.removed) continue;
    switch (type) {
      case PropertyType::kNull:
        break;
      case PropertyType::kBool:
        dst->push_back(p.value.AsBool() ? 1 : 0);
        break;
      case PropertyType::kInt:
        PutVarint64(dst, util::ZigZagEncode(p.value.AsInt()));
        break;
      case PropertyType::kDouble:
        util::PutDouble(dst, p.value.AsDouble());
        break;
      case PropertyType::kString: {
        AION_ASSIGN_OR_RETURN(uint32_t ref, InternChecked(p.value.AsString()));
        PutFixed32(dst, ref);
        break;
      }
      case PropertyType::kIntArray:
        PutVarint64(dst, p.value.AsIntArray().size());
        for (int64_t v : p.value.AsIntArray()) {
          PutVarint64(dst, util::ZigZagEncode(v));
        }
        break;
      case PropertyType::kDoubleArray:
        PutVarint64(dst, p.value.AsDoubleArray().size());
        for (double v : p.value.AsDoubleArray()) util::PutDouble(dst, v);
        break;
      case PropertyType::kStringArray: {
        PutVarint64(dst, p.value.AsStringArray().size());
        for (const std::string& s : p.value.AsStringArray()) {
          AION_ASSIGN_OR_RETURN(uint32_t ref, InternChecked(s));
          PutFixed32(dst, ref);
        }
        break;
      }
    }
  }
  return Status::OK();
}

StatusOr<TemporalRecord> RecordCodec::Decode(Slice* input) const {
  if (input->empty()) return Status::Corruption("empty record");
  TemporalRecord r;
  const uint8_t header = static_cast<uint8_t>((*input)[0]);
  input->RemovePrefix(1);
  r.entity_type = static_cast<EntityType>(header & kTypeMask);
  r.deleted = (header & kDeletedBit) != 0;
  r.delta = (header & kDeltaBit) != 0;
  if (!GetVarint64(input, &r.id) || !GetVarint64(input, &r.ts)) {
    return Status::Corruption("truncated record header");
  }
  if (r.entity_type == EntityType::kRelationship ||
      r.entity_type == EntityType::kNeighbourhood) {
    if (!GetVarint64(input, &r.src) || !GetVarint64(input, &r.tgt)) {
      return Status::Corruption("truncated record endpoints");
    }
  }
  if (r.deleted) return r;
  if (r.entity_type == EntityType::kNeighbourhood) return r;

  if (r.entity_type == EntityType::kRelationship) {
    if (input->size() < 4) return Status::Corruption("truncated type ref");
    const uint32_t type_ref = DecodeFixed32(input->data());
    input->RemovePrefix(4);
    AION_ASSIGN_OR_RETURN(r.rel_type, pool_->Lookup(type_ref));
  }

  if (r.entity_type == EntityType::kNode) {
    uint64_t nlabels;
    if (!GetVarint64(input, &nlabels)) {
      return Status::Corruption("truncated label count");
    }
    r.labels.reserve(nlabels);
    for (uint64_t i = 0; i < nlabels; ++i) {
      if (input->size() < 4) return Status::Corruption("truncated label ref");
      const uint32_t tagged = DecodeFixed32(input->data());
      input->RemovePrefix(4);
      LabelEntry entry;
      entry.removed = (tagged & kLabelRemovedBit) != 0;
      AION_ASSIGN_OR_RETURN(entry.label,
                            pool_->Lookup(tagged & ~kLabelRemovedBit));
      r.labels.push_back(std::move(entry));
    }
  }

  uint64_t nprops;
  if (!GetVarint64(input, &nprops)) {
    return Status::Corruption("truncated prop count");
  }
  r.props.reserve(nprops);
  for (uint64_t i = 0; i < nprops; ++i) {
    if (input->size() < 4) return Status::Corruption("truncated prop ref");
    const uint32_t tagged = DecodeFixed32(input->data());
    input->RemovePrefix(4);
    PropEntry entry;
    entry.removed = (tagged & kPropRemovedBit) != 0;
    const auto type = static_cast<PropertyType>(
        (tagged >> kPropTypeShift) & 0x7);
    AION_ASSIGN_OR_RETURN(entry.key, pool_->Lookup(tagged & kPropRefMask));
    if (!entry.removed) {
      switch (type) {
        case PropertyType::kNull:
          entry.value = PropertyValue();
          break;
        case PropertyType::kBool: {
          if (input->empty()) return Status::Corruption("truncated bool");
          entry.value = PropertyValue((*input)[0] != 0);
          input->RemovePrefix(1);
          break;
        }
        case PropertyType::kInt: {
          uint64_t zz;
          if (!GetVarint64(input, &zz)) {
            return Status::Corruption("truncated int");
          }
          entry.value = PropertyValue(util::ZigZagDecode(zz));
          break;
        }
        case PropertyType::kDouble: {
          if (input->size() < 8) return Status::Corruption("truncated double");
          entry.value = PropertyValue(util::DecodeDouble(input->data()));
          input->RemovePrefix(8);
          break;
        }
        case PropertyType::kString: {
          if (input->size() < 4) {
            return Status::Corruption("truncated string ref");
          }
          const uint32_t ref = DecodeFixed32(input->data());
          input->RemovePrefix(4);
          AION_ASSIGN_OR_RETURN(std::string s, pool_->Lookup(ref));
          entry.value = PropertyValue(std::move(s));
          break;
        }
        case PropertyType::kIntArray: {
          uint64_t n;
          if (!GetVarint64(input, &n)) {
            return Status::Corruption("truncated array");
          }
          std::vector<int64_t> values;
          values.reserve(n);
          for (uint64_t j = 0; j < n; ++j) {
            uint64_t zz;
            if (!GetVarint64(input, &zz)) {
              return Status::Corruption("truncated int array");
            }
            values.push_back(util::ZigZagDecode(zz));
          }
          entry.value = PropertyValue(std::move(values));
          break;
        }
        case PropertyType::kDoubleArray: {
          uint64_t n;
          if (!GetVarint64(input, &n)) {
            return Status::Corruption("truncated array");
          }
          std::vector<double> values;
          values.reserve(n);
          for (uint64_t j = 0; j < n; ++j) {
            if (input->size() < 8) {
              return Status::Corruption("truncated double array");
            }
            values.push_back(util::DecodeDouble(input->data()));
            input->RemovePrefix(8);
          }
          entry.value = PropertyValue(std::move(values));
          break;
        }
        case PropertyType::kStringArray: {
          uint64_t n;
          if (!GetVarint64(input, &n)) {
            return Status::Corruption("truncated array");
          }
          std::vector<std::string> values;
          values.reserve(n);
          for (uint64_t j = 0; j < n; ++j) {
            if (input->size() < 4) {
              return Status::Corruption("truncated string array ref");
            }
            const uint32_t ref = DecodeFixed32(input->data());
            input->RemovePrefix(4);
            AION_ASSIGN_OR_RETURN(std::string s, pool_->Lookup(ref));
            values.push_back(std::move(s));
          }
          entry.value = PropertyValue(std::move(values));
          break;
        }
      }
    }
    r.props.push_back(std::move(entry));
  }
  return r;
}

TemporalRecord RecordCodec::FullNode(const graph::Node& node, Timestamp ts) {
  TemporalRecord r;
  r.entity_type = EntityType::kNode;
  r.id = node.id;
  r.ts = ts;
  r.labels.reserve(node.labels.size());
  for (const std::string& l : node.labels) r.labels.push_back({l, false});
  r.props.reserve(node.props.size());
  for (const auto& [k, v] : node.props) r.props.push_back({k, false, v});
  return r;
}

TemporalRecord RecordCodec::FullRelationship(const graph::Relationship& rel,
                                             Timestamp ts) {
  TemporalRecord r;
  r.entity_type = EntityType::kRelationship;
  r.id = rel.id;
  r.ts = ts;
  r.src = rel.src;
  r.tgt = rel.tgt;
  r.rel_type = rel.type;
  r.props.reserve(rel.props.size());
  for (const auto& [k, v] : rel.props) r.props.push_back({k, false, v});
  return r;
}

TemporalRecord RecordCodec::Tombstone(EntityType type, uint64_t id,
                                      Timestamp ts) {
  TemporalRecord r;
  r.entity_type = type;
  r.deleted = true;
  r.id = id;
  r.ts = ts;
  return r;
}

StatusOr<TemporalRecord> RecordCodec::DeltaFromUpdate(
    const graph::GraphUpdate& u) {
  using graph::UpdateOp;
  TemporalRecord r;
  r.delta = true;
  r.id = u.id;
  r.ts = u.ts;
  switch (u.op) {
    case UpdateOp::kSetNodeProperty:
      r.entity_type = EntityType::kNode;
      r.props.push_back({u.key, false, u.value});
      return r;
    case UpdateOp::kRemoveNodeProperty:
      r.entity_type = EntityType::kNode;
      r.props.push_back({u.key, true, {}});
      return r;
    case UpdateOp::kAddNodeLabel:
      r.entity_type = EntityType::kNode;
      r.labels.push_back({u.label, false});
      return r;
    case UpdateOp::kRemoveNodeLabel:
      r.entity_type = EntityType::kNode;
      r.labels.push_back({u.label, true});
      return r;
    case UpdateOp::kSetRelationshipProperty:
      r.entity_type = EntityType::kRelationship;
      r.props.push_back({u.key, false, u.value});
      return r;
    case UpdateOp::kRemoveRelationshipProperty:
      r.entity_type = EntityType::kRelationship;
      r.props.push_back({u.key, true, {}});
      return r;
    default:
      return Status::InvalidArgument(
          "structural updates are not deltas: " + u.ToString());
  }
}

Status RecordCodec::FoldNode(const TemporalRecord& record, graph::Node* node,
                             bool* live) {
  if (record.entity_type != EntityType::kNode) {
    return Status::InvalidArgument("record is not a node record");
  }
  if (record.deleted) {
    *live = false;
    return Status::OK();
  }
  if (!record.delta) {
    // Full materialization replaces the state.
    node->id = record.id;
    node->labels.clear();
    node->props.Clear();
    *live = true;
  } else if (!*live) {
    return Status::Corruption("delta record for dead node " +
                              std::to_string(record.id));
  }
  for (const LabelEntry& l : record.labels) {
    if (l.removed) {
      node->RemoveLabel(l.label);
    } else {
      node->AddLabel(l.label);
    }
  }
  for (const PropEntry& p : record.props) {
    if (p.removed) {
      node->props.Remove(p.key);
    } else {
      node->props.Set(p.key, p.value);
    }
  }
  return Status::OK();
}

Status RecordCodec::FoldRelationship(const TemporalRecord& record,
                                     graph::Relationship* rel, bool* live) {
  if (record.entity_type != EntityType::kRelationship) {
    return Status::InvalidArgument("record is not a relationship record");
  }
  if (record.deleted) {
    *live = false;
    return Status::OK();
  }
  if (!record.delta) {
    rel->id = record.id;
    rel->src = record.src;
    rel->tgt = record.tgt;
    rel->type = record.rel_type;
    rel->props.Clear();
    *live = true;
  } else if (!*live) {
    return Status::Corruption("delta record for dead relationship " +
                              std::to_string(record.id));
  }
  for (const PropEntry& p : record.props) {
    if (p.removed) {
      rel->props.Remove(p.key);
    } else {
      rel->props.Set(p.key, p.value);
    }
  }
  return Status::OK();
}

}  // namespace aion::core
