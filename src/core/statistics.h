// Cardinality estimation (Sec 5.1): Aion tracks base statistics with
// histograms — node/relationship counts, counts per label, per relationship
// type, and per basic pattern (:Label)-[:Type]->() — and derives the
// cardinality of complex patterns as e.g.
//   #((:A)-[:R]->(:B)) = min(#((:A)-[:R]->()), #(()-[:R]->(:B))).
// The planner uses the estimated fraction of the graph accessed to choose
// between LineageStore (< 30%) and TimeStore.
//
// Counts are maintained from the committed update stream. Label counts are
// maintained incrementally from label add/remove events and node additions;
// node deletion decrements totals (per-label counts on delete follow the
// delete-requires-prior-label-removal convention loosely, so per-label
// figures are estimates, as in production optimizers).
#ifndef AION_CORE_STATISTICS_H_
#define AION_CORE_STATISTICS_H_

#include <mutex>
#include <string>

#include "graph/update.h"
#include "util/histogram.h"

namespace aion::core {

class GraphStatistics {
 public:
  /// Folds one committed update into the statistics.
  void Observe(const graph::GraphUpdate& update);

  int64_t num_nodes() const;
  int64_t num_relationships() const;
  int64_t CountWithLabel(const std::string& label) const;
  int64_t CountWithType(const std::string& type) const;

  /// #((:label)-[:type]->()) — source-side pattern count; empty strings act
  /// as wildcards.
  int64_t CountPattern(const std::string& src_label,
                       const std::string& type) const;

  /// Derived cardinality of (:a)-[:r]->(:b) via the min() rule.
  int64_t EstimatePattern(const std::string& src_label,
                          const std::string& type,
                          const std::string& tgt_label) const;

  double AverageDegree() const;

  /// Estimated fraction of the graph reached by an n-hop expansion from one
  /// node: min(1, avg_degree^hops / num_nodes). Drives the 30% heuristic.
  double EstimateExpandFraction(uint32_t hops) const;

  /// Estimated fraction selected by a label scan.
  double EstimateLabelFraction(const std::string& label) const;

 private:
  mutable std::mutex mu_;
  int64_t num_nodes_ = 0;
  int64_t num_rels_ = 0;
  util::CountTable label_counts_;
  util::CountTable type_counts_;
  util::CountTable out_pattern_counts_;  // "label|type" -> count
  util::CountTable in_pattern_counts_;   // "type|label" -> count
};

}  // namespace aion::core

#endif  // AION_CORE_STATISTICS_H_
