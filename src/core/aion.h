// AionStore: the temporal graph system of the paper (Fig 4). It combines
//   * GraphStore    — LRU snapshot cache + synchronously maintained latest
//                     graph replica,
//   * TimeStore     — time-indexed update log + snapshots (global queries),
//   * LineageStore  — entity-indexed history (point/subgraph queries),
// behind the temporal graph API of Table 1, and plugs into the host
// database as an after-commit TransactionEventListener.
//
// Commit path (Sec 5.1 stage 2): only the TimeStore (and the latest-graph
// replica) are updated synchronously; background workers cascade updates to
// the LineageStore and create snapshots under the policy. When the
// LineageStore lags behind a query's timestamp, Aion transparently falls
// back to the TimeStore at a performance penalty.
//
// Store selection (Sec 5.1/6.3): queries estimated to touch less than 30%
// of the graph use the LineageStore; otherwise a full snapshot is
// constructed with the TimeStore.
//
// Interval convention: every (start, end) timestamp pair in this API is
// half-open [start, end) — `start` included, `end` excluded — and
// start == end denotes the instant state at `start`. This holds for the
// history queries (GetNode / GetRelationship / GetRelationships), GetDiff,
// GetWindow, GetTemporalGraph and the stepped variants (GetGraph,
// ExpandOverTime). The stores' internal replay primitive
// (TimeStore::ReplayRange) is the one deliberate exception and documents
// its own bounds.
#ifndef AION_CORE_AION_H_
#define AION_CORE_AION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/cascade.h"
#include "core/compaction.h"
#include "core/cost_model.h"
#include "core/csr_cache.h"
#include "core/graphstore.h"
#include "core/lineagestore.h"
#include "core/statistics.h"
#include "core/timestore.h"
#include "core/write_batch.h"
#include "graph/graph_view.h"
#include "graph/temporal_graph.h"
#include "obs/capture.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/timeseries.h"
#include "obs/workload_registry.h"
#include "txn/graphdb.h"
#include "txn/listener.h"
#include "util/thread_pool.h"

namespace aion::core {

class AionStore : public txn::TransactionEventListener {
 public:
  /// How LineageStore updates reach disk (Fig 9 compares these modes).
  enum class LineageMode {
    kAsync,     // default: background cascade off the commit path
    kSync,      // updated inside the commit path (TS+LS of Fig 9)
    kDisabled,  // TimeStore only
  };

  /// What a committer experiences when the bounded commit->cascade queue is
  /// full (LineageMode::kAsync only).
  enum class CascadeBackpressure {
    kBlock,  // default: the committer blocks until a slot frees up
    kFail,   // the ingest fails fast with util::Status::Backpressure
  };

  struct Options {
    std::string dir;
    LineageMode lineage_mode = LineageMode::kAsync;
    bool enable_timestore = true;  // off = LineageStore-only (Fig 9 "LS")
    SnapshotPolicy snapshot_policy;
    uint32_t materialization_threshold = 4;
    size_t graphstore_capacity_bytes = size_t{1} << 30;
    /// LineageStore is chosen when the estimated accessed fraction is below
    /// this threshold (Sec 6.3 fixes it at 30%).
    double lineage_fraction_threshold = 0.3;
    size_t index_cache_pages = 512;
    /// Snapshot-cache shards in the GraphStore (per-shard shared_mutex;
    /// concurrent GetGraphAt calls on different snapshots never contend).
    size_t graphstore_shards = GraphStore::kDefaultShards;
    /// Worker threads of the shared read pool (parallel replay decode).
    /// 0 = auto: hardware_concurrency clamped to [2, 16].
    size_t read_threads = 0;
    /// Queries at or above this wall time land in the slow-query log
    /// (JSON lines + CALL dbms.slowlog()). 0 disables the log entirely.
    uint64_t slow_query_threshold_nanos = 0;
    /// Slow-query log file. Empty with a non-zero threshold defaults to
    /// `<dir>/slowlog.jsonl` (in-memory ring only for in-memory stores).
    std::string slow_query_log_path;
    /// Serial shard executors of the asynchronous cascade pipeline: updates
    /// are routed by entity-id hash, so same-entity updates apply in commit
    /// order while disjoint entities proceed in parallel. Must be in
    /// [1, 64]; 1 reproduces the single-ordered-worker cascade.
    size_t cascade_workers = 2;
    /// Capacity of the bounded commit->cascade queue, in items (one item =
    /// one Ingest transaction or one IngestBatch). Occupancy is exported as
    /// the cascade.queue_depth gauge. Must be positive.
    size_t cascade_queue_capacity = 1024;
    /// Full-queue policy for direct Ingest/IngestBatch callers. The
    /// after-commit listener path always blocks (it must not fail).
    CascadeBackpressure cascade_backpressure = CascadeBackpressure::kBlock;

    // ----- Flight recorder (see obs/timeseries.h) -----

    /// Background metric-sampling period. 0 disables the sampler (the ring
    /// still exists; SampleNow/dbms.flight() work on demand).
    uint64_t flight_sample_period_millis = 500;
    /// Flight-recorder ring capacity in samples. Must be positive.
    size_t flight_ring_capacity = 256;

    // ----- Health watchdog (see obs/health.h) -----

    /// Background health-evaluation period. 0 disables the background loop
    /// (dbms.health() and /healthz still evaluate on demand).
    uint64_t health_check_period_millis = 1000;
    /// Degraded when the oldest enqueued-but-unapplied cascade transaction
    /// is older than this (ingest-to-visible lag).
    uint64_t health_max_watermark_lag_nanos = 10'000'000'000;  // 10 s
    /// Degraded when the oldest queued group-commit seat is older than this
    /// (requires AttachHostDatabase).
    uint64_t health_max_commit_queue_age_nanos = 5'000'000'000;  // 5 s
    /// Degraded when WAL fsync p99 exceeds this (requires
    /// AttachHostDatabase; the check is moot unless sync_commits).
    uint64_t health_max_wal_sync_p99_nanos = 1'000'000'000;  // 1 s
    /// Degraded when the snapshot-cache hit rate falls below this. The
    /// default 0.0 never fails (a cold cache is not a fault); raise it for
    /// cache-dependent deployments.
    double health_min_snapshot_hit_rate = 0.0;
    /// Degraded when cascade backpressure events exceed this rate
    /// (events/second, measured between evaluations).
    double health_max_backpressure_per_sec = 100.0;

    // ----- Workload observatory (see obs/workload_registry.h) -----

    /// Per-session accounting entries retained by the workload registry
    /// (least-recently-active sessions evicted beyond this). Must be
    /// positive.
    size_t workload_max_sessions = 256;
    /// Degraded when any single statement has been running longer than
    /// this. 0 disables the check (long analytical scans are legitimate in
    /// many deployments).
    uint64_t health_max_query_runtime_nanos = 0;
    /// Workload-capture file (JSON lines, one completed statement per
    /// line; see obs/capture.h). Empty disables capture.
    std::string capture_path;
    /// Rotate the capture file to `.1` beyond this size.
    size_t capture_max_file_bytes = 64u << 20;

    // ----- Storage lifecycle (retention + compaction; see ARCHITECTURE.md)

    /// Retention window in timestamp ticks: temporal queries reaching below
    /// `last_ingested_ts - retention_window` fail with
    /// util::Status::OutOfRetention, and compaction rounds fold everything
    /// below that logical floor into one snapshot, dropping the subsumed
    /// log segments. 0 = unbounded retention (no gating, no segment drops).
    Timestamp retention_window = 0;
    /// Background compaction-round period. 0 disables the background
    /// thread; rounds then only run via CompactNow().
    uint64_t compaction_period_millis = 0;
    /// Seal a TimeStore log segment once it reaches this many bytes. Sealed
    /// segments are the unit of retention-driven compaction; smaller
    /// segments track the retention floor more tightly at the cost of more
    /// files and manifest commits.
    uint64_t segment_target_bytes = 8ull << 20;
    /// Keep-vs-reconstruct snapshot GC (Khurana-style cost model): a
    /// snapshot is dropped when replaying forward from its predecessor
    /// costs at most this many log records. 0 disables snapshot GC (the
    /// floor snapshot and the newest snapshot are always kept regardless).
    uint64_t snapshot_keep_replay_records = 0;
    /// Rewrite a LineageStore delta chain as a fully materialized record
    /// once it grows this long (compaction rounds only; complements the
    /// ingest-time materialization_threshold for entities whose threshold
    /// was raised or whose chains predate it). 0 disables chain rewriting.
    uint32_t lineage_max_chain = 0;
    /// At most this many chain records are rewritten per compaction round
    /// (bounds the LineageStore exclusive-latch hold). 0 = unlimited.
    size_t lineage_rewrites_per_round = 256;
    /// Degraded when the physical compaction floor lags the logical
    /// retention floor by more than this many ticks (compaction cannot keep
    /// up, or never runs). 0 = auto: 2 x retention_window.
    Timestamp health_max_retention_lag = 0;
    /// Test-only: crash injection inside TimeStore::CompactUpTo.
    TimeStore::CompactionCrashPoint compaction_crash_point =
        TimeStore::CompactionCrashPoint::kNone;

    // ----- Parallel execution (see query/exec.h, core/csr_cache.h) -----

    /// Byte budget of the pinned-snapshot CSR projection cache backing
    /// ProjectCsrAt (repeated analytics over one snapshot skip
    /// re-materialization). 0 disables caching: every call rebuilds.
    size_t csr_cache_capacity_bytes = 256u << 20;
  };

  static util::StatusOr<std::unique_ptr<AionStore>> Open(
      const Options& options);

  ~AionStore() override;

  AionStore(const AionStore&) = delete;
  AionStore& operator=(const AionStore&) = delete;

  // -------------------------------------------------------------------
  // Ingestion
  // -------------------------------------------------------------------

  /// TransactionEventListener: called by the host database after commit.
  /// Storage failures on this path are fail-stop (checked).
  void AfterCommit(const txn::TransactionData& data) override;

  /// Direct ingestion for embedded use without a host database. Timestamps
  /// must be monotonic. This is a thin single-transaction wrapper over the
  /// batched write path — loaders ingesting more than one transaction
  /// should build a WriteBatch and call IngestBatch instead.
  util::Status Ingest(Timestamp ts,
                      const std::vector<graph::GraphUpdate>& updates);

  /// Batched ingestion: every transaction group in the batch commits in
  /// order with one GraphStore mutation, one TimeStore append (single log
  /// write + sorted B+Tree batch-load) and one cascade enqueue for the
  /// whole batch. Group timestamps must be nondecreasing and >= the
  /// TimeStore watermark. With CascadeBackpressure::kFail and a full
  /// cascade queue, returns util::Status::Backpressure *before* touching
  /// any store (the batch can simply be retried).
  util::Status IngestBatch(WriteBatch&& batch);

  /// Blocks until the background cascade (LineageStore, snapshots) caught
  /// up with everything ingested so far.
  void DrainBackground();

  /// Re-ingests updates committed after Aion's persisted watermark from the
  /// host database's WAL (Sec 5.1 fault tolerance).
  util::Status RecoverFrom(const txn::GraphDatabase& db);

  util::Status Flush();

  // -------------------------------------------------------------------
  // Temporal graph API (Table 1)
  // -------------------------------------------------------------------

  /// Node history between the given timestamps ([start, end); start == end
  /// means the instant state).
  util::StatusOr<std::vector<NodeVersion>> GetNode(graph::NodeId id,
                                                   Timestamp start,
                                                   Timestamp end);

  /// Relationship history between the given timestamps.
  util::StatusOr<std::vector<RelationshipVersion>> GetRelationship(
      graph::RelId id, Timestamp start, Timestamp end);

  /// A node's (in/out) relationship history.
  util::StatusOr<std::vector<std::vector<RelationshipVersion>>>
  GetRelationships(graph::NodeId id, Direction direction, Timestamp start,
                   Timestamp end);

  /// A node's n-hop neighbourhood at time t (result[h] = nodes at hop h+1).
  /// Chooses LineageStore or TimeStore via the cardinality heuristic.
  util::StatusOr<std::vector<std::vector<graph::Node>>> Expand(
      graph::NodeId id, Direction direction, uint32_t hops, Timestamp t);

  /// Table 1's full expand signature: the n-hop history over [start, end),
  /// one expansion per `step` time units.
  struct TimedExpansion {
    Timestamp at = 0;
    std::vector<std::vector<graph::Node>> hops;
  };
  util::StatusOr<std::vector<TimedExpansion>> ExpandOverTime(
      graph::NodeId id, Direction direction, uint32_t hops, Timestamp start,
      Timestamp end, Timestamp step);

  /// The difference between two time instances: all updates with
  /// start <= ts < end, in timestamp order (half-open, see the interval
  /// convention in the file header).
  util::StatusOr<std::vector<graph::GraphUpdate>> GetDiff(Timestamp start,
                                                          Timestamp end);

  /// The graph as of time t.
  util::StatusOr<std::shared_ptr<const graph::GraphView>> GetGraphAt(
      Timestamp t);

  /// The history of the graph between two timestamps, one snapshot per
  /// `step` time units (Table 1 getGraph).
  util::StatusOr<std::vector<std::shared_ptr<const graph::GraphView>>>
  GetGraph(Timestamp start, Timestamp end, Timestamp step);

  /// Graph window (Sec 4.1): all entities present within [start, end),
  /// including connections of present nodes valid at start.
  util::StatusOr<std::unique_ptr<graph::MemoryGraph>> GetWindow(
      Timestamp start, Timestamp end);

  /// Temporal LPG over [start, end).
  util::StatusOr<std::unique_ptr<graph::TemporalGraph>> GetTemporalGraph(
      Timestamp start, Timestamp end);

  // -------------------------------------------------------------------
  // Single-instant conveniences
  // -------------------------------------------------------------------

  /// The state of one node / relationship at time t (nullopt = not alive).
  /// Routed like the history queries: LineageStore when it can serve,
  /// TimeStore fallback otherwise.
  util::StatusOr<std::optional<graph::Node>> GetNodeAt(graph::NodeId id,
                                                       Timestamp t);
  util::StatusOr<std::optional<graph::Relationship>> GetRelationshipAt(
      graph::RelId id, Timestamp t);

  /// An independent mutable copy of the graph at time t (TimeStore
  /// snapshot + replay; fails when the TimeStore is disabled).
  util::StatusOr<std::unique_ptr<graph::MemoryGraph>> MaterializeGraphAt(
      Timestamp t);

  /// The synchronously maintained latest in-memory replica as an immutable
  /// shared snapshot (cheap; copy-on-write on the next ingest).
  std::shared_ptr<const graph::MemoryGraph> LatestGraph();

  /// The CSR projection of the graph at time t, served from the
  /// byte-budgeted projection cache when possible. Requests at or after
  /// the pinned epoch's timestamp all share the epoch's cache entry, so
  /// repeated analytics on a live store still hit as long as no ingest
  /// landed in between. `weight_property` selects a weighted projection
  /// (part of the cache key); empty = structural.
  util::StatusOr<std::shared_ptr<const graph::CsrGraph>> ProjectCsrAt(
      Timestamp t, const std::string& weight_property = "");

  /// The projection cache (never null; effectively disabled when
  /// Options::csr_cache_capacity_bytes is 0).
  CsrCache* csr_cache() const { return csr_cache_.get(); }

  // -------------------------------------------------------------------
  // Epoch-pinned reads
  // -------------------------------------------------------------------

  /// An immutable (timestamp, graph) pair a reader pinned: the graph is the
  /// commit-boundary state at exactly `ts`. Holding the shared_ptr keeps
  /// the state alive; ingestion proceeds copy-on-write underneath.
  struct PinnedEpoch {
    Timestamp ts = 0;
    std::shared_ptr<const graph::MemoryGraph> graph;
  };

  /// Pins the current read epoch: a consistent snapshot at least as new as
  /// every ingest that completed before this call. Readers never take
  /// ingest_mu_ (it stays writer-only) — a stale epoch is refreshed from
  /// the GraphStore's latest replica under a short epoch latch, and
  /// `GetGraphAt(t)` / `MaterializeGraphAt(t)` with t at or after the
  /// pinned timestamp are served straight from the pin, off the TimeStore
  /// path entirely. The wait to acquire a pin is recorded in the
  /// "aion.reader_wait_nanos" histogram.
  std::shared_ptr<const PinnedEpoch> PinEpoch();

  // -------------------------------------------------------------------
  // Planner support
  // -------------------------------------------------------------------

  enum class StoreChoice { kLineageStore, kTimeStore };

  /// The store picked for an n-hop expansion: measured operator costs once
  /// the cost model is confident (both routes observed >= kMinSamples
  /// times), the Sec 6.3 accessed-fraction heuristic until then.
  StoreChoice ChooseStoreForExpand(uint32_t hops) const;

  /// The measured-cost model behind ChooseStoreForExpand. Fed by timed
  /// Expand executions and PROFILE's SnapshotLoad stage; tests and
  /// dbms.costmodel() read it.
  OperatorCostModel* cost_model() { return &cost_model_; }
  const OperatorCostModel& cost_model() const { return cost_model_; }

  /// Expand with an explicit store choice, bypassing the cardinality
  /// heuristic and the lag fallback (benchmarks, plan pinning). Fails with
  /// FailedPrecondition when the requested store is disabled.
  util::StatusOr<std::vector<std::vector<graph::Node>>> ExpandUsing(
      StoreChoice store, graph::NodeId id, Direction direction,
      uint32_t hops, Timestamp t);

  /// Whether the LineageStore can serve a query up to `ts` right now
  /// (false = lagging cascade or disabled; TimeStore fallback applies).
  bool LineageCanServe(Timestamp ts) const;

  const GraphStatistics& stats() const { return stats_; }

  // -------------------------------------------------------------------
  // Introspection & observability
  // -------------------------------------------------------------------

  /// A read-only, self-describing view of the store's state: which stores
  /// are enabled, their sizes and watermarks, and a point-in-time snapshot
  /// of every registered metric. This replaces direct access to the
  /// underlying stores — callers observe, they do not reach in.
  struct Introspection {
    // Facade.
    Timestamp last_ingested_ts = 0;
    uint64_t total_bytes = 0;  // on-disk footprint across all stores
    // GraphStore (latest replica + snapshot cache).
    Timestamp latest_ts = 0;
    uint64_t graphstore_cached_snapshots = 0;
    uint64_t graphstore_cached_bytes = 0;
    uint64_t graphstore_hits = 0;
    uint64_t graphstore_misses = 0;
    uint64_t graphstore_cow_clones = 0;
    // TimeStore.
    bool timestore_enabled = false;
    Timestamp timestore_last_ts = 0;
    uint64_t timestore_num_updates = 0;
    uint64_t timestore_log_bytes = 0;
    uint64_t timestore_snapshot_bytes = 0;
    uint64_t timestore_size_bytes = 0;
    // LineageStore.
    bool lineage_enabled = false;
    Timestamp lineage_applied_ts = 0;  // cascade watermark
    uint64_t lineage_num_records = 0;
    uint64_t lineage_size_bytes = 0;
    // Counters, gauges and latency histograms (see docs/observability.md).
    obs::MetricsSnapshot metrics;
  };
  Introspection Introspect() const;

  /// The store's metric registry. Valid for the store's lifetime; shared
  /// with every layer underneath (page caches, B+Trees, the three stores).
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// The slow-query log (never null; disabled unless
  /// Options::slow_query_threshold_nanos > 0). The query engine records
  /// into it; CALL dbms.slowlog() reads it back.
  obs::SlowQueryLog* slow_query_log() const { return slow_log_.get(); }

  /// The flight recorder (never null). Background sampling runs when
  /// Options::flight_sample_period_millis > 0; the ring serves
  /// CALL dbms.flight() and GET /debug/flight either way.
  obs::FlightRecorder* flight_recorder() const { return flight_.get(); }

  /// The health watchdog (never null). Store-level checks (watermark lag,
  /// snapshot-cache hit rate, backpressure rate) register at Open;
  /// host-database checks join via AttachHostDatabase.
  obs::HealthWatchdog* health_watchdog() const { return watchdog_.get(); }

  /// The workload registry (never null): live queries, cooperative
  /// cancellation, per-session accounting. The query engine registers every
  /// statement; CALL dbms.queries()/dbms.sessions() and GET /debug/queries
  /// read it back.
  obs::WorkloadRegistry* workload_registry() const { return workload_.get(); }

  /// The workload capture (never null; disabled unless
  /// Options::capture_path is set). The query engine appends every
  /// completed statement; bench_replay re-executes the file.
  obs::WorkloadCapture* workload_capture() const { return capture_.get(); }

  /// The shared reader pool (parallel replay decode, morsel-driven query
  /// execution). Never null after Open.
  util::ThreadPool* read_pool() const { return read_pool_.get(); }

  /// Registers host-database health checks (group-commit queue age, WAL
  /// fsync p99) against `db` and shares this store's metric registry with
  /// it (txn.* instruments). `db` must outlive this store. Idempotent;
  /// called by the query engine when it fronts both layers.
  void AttachHostDatabase(txn::GraphDatabase* db);

  /// Ingest-to-visible lag, measured at the cascade (0 in kSync/kDisabled
  /// modes): wall-clock age of the oldest enqueued-but-unapplied
  /// transaction. Refreshes the cascade.watermark_lag_nanos gauge.
  uint64_t CascadeWatermarkLagNanos() const;

  /// Cascade watermark: highest timestamp whose transaction the
  /// LineageStore has *fully* applied (0 when disabled). In async mode the
  /// pipeline's ordered watermark is authoritative — it only advances once
  /// every shard of a transaction (and all earlier transactions) applied.
  /// Cheap — a single atomic load.
  Timestamp cascade_applied_ts() const {
    if (cascade_ != nullptr) return cascade_->applied_ts();
    return lineage_store_ != nullptr ? lineage_store_->applied_ts() : 0;
  }

  /// The async cascade pipeline (nullptr in kSync/kDisabled modes). Exposed
  /// for tests and benchmarks: pause/resume make queue overflow — and thus
  /// backpressure — deterministic.
  CascadePipeline* cascade_for_testing() const { return cascade_.get(); }

  Timestamp last_ingested_ts() const {
    return last_ingested_ts_.load(std::memory_order_acquire);
  }

  /// Total temporal storage on disk.
  uint64_t SizeBytes() const;

  // -------------------------------------------------------------------
  // Storage lifecycle (retention + compaction)
  // -------------------------------------------------------------------

  /// Runs one full compaction round synchronously: advances the physical
  /// floor to the current logical retention floor (merging cold segments
  /// into a snapshot and dropping them), garbage-collects snapshots under
  /// the keep-vs-reconstruct cost model, and rewrites over-long
  /// LineageStore delta chains. Serialized against the background
  /// scheduler; safe to call concurrently with ingest and queries.
  util::Status CompactNow();

  /// The logical retention floor: `last_ingested_ts - retention_window`,
  /// clamped at 0. Temporal queries reaching strictly below it fail with
  /// util::Status::OutOfRetention. Always 0 when retention is unbounded.
  Timestamp RetentionFloor() const;

  /// Point-in-time lifecycle accounting (CALL dbms.compaction()).
  struct RetentionInfo {
    Timestamp retention_window = 0;  // 0 = unbounded
    Timestamp logical_floor = 0;     // where queries are gated
    Timestamp physical_floor = 0;    // where data is actually gone
    uint64_t compaction_rounds = 0;
    uint64_t segments_live = 0;
    uint64_t segments_dropped = 0;  // lifetime totals from here down
    uint64_t records_dropped = 0;
    uint64_t bytes_reclaimed = 0;
    uint64_t snapshots_live = 0;
    uint64_t snapshots_dropped = 0;
    uint64_t chains_rewritten = 0;
    uint64_t log_bytes = 0;
    uint64_t snapshot_bytes = 0;
  };
  RetentionInfo RetentionStats() const;

 private:
  AionStore() = default;

  /// The shared write path: validates, stamps and applies a sequence of
  /// transaction groups. `force_block` overrides CascadeBackpressure::kFail
  /// (the after-commit listener must never observe backpressure).
  util::Status IngestGroups(std::vector<WriteBatch::TxnGroup> groups,
                            bool force_block);

  void ApplyToLineage(const std::vector<graph::GraphUpdate>& updates);
  void MaybeSnapshot(bool due);

  /// One storage-lifecycle round (the CompactionScheduler's RoundFn).
  util::Status CompactionRound();

  /// OutOfRetention when `earliest` reaches strictly below the logical
  /// retention floor; OK otherwise (and always OK with unbounded
  /// retention). Every temporal query gates on this before touching any
  /// store — including the epoch fast path, so results never depend on
  /// whether compaction already caught up.
  util::Status CheckRetention(Timestamp earliest) const;

  /// TimeStore-based fallbacks for fine-grained queries.
  util::StatusOr<std::vector<NodeVersion>> NodeHistoryViaTimeStore(
      graph::NodeId id, Timestamp start, Timestamp end);
  util::StatusOr<std::vector<RelationshipVersion>> RelHistoryViaTimeStore(
      graph::RelId id, Timestamp start, Timestamp end);
  util::StatusOr<std::vector<std::vector<graph::Node>>> ExpandViaTimeStore(
      graph::NodeId id, Direction direction, uint32_t hops, Timestamp t);

  /// Counts one "fallback.timestore" when a query configured for the
  /// LineageStore had to be served by the TimeStore (lagging cascade).
  void CountFallback();

  // Declared first: every store below holds raw instrument pointers into
  // the registry, so it must outlive them during destruction.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  std::unique_ptr<obs::WorkloadRegistry> workload_;
  std::unique_ptr<obs::WorkloadCapture> capture_;
  Options options_;
  std::unique_ptr<storage::StringPool> string_pool_;
  std::unique_ptr<GraphStore> graph_store_;
  // Shared reader pool (parallel replay decode). Declared before the
  // TimeStore, which keeps a raw pointer to it.
  std::unique_ptr<util::ThreadPool> read_pool_;
  std::unique_ptr<TimeStore> time_store_;
  std::unique_ptr<LineageStore> lineage_store_;
  GraphStatistics stats_;
  // Measured-cost store routing + the pinned-snapshot projection cache.
  OperatorCostModel cost_model_;
  std::unique_ptr<CsrCache> csr_cache_;
  std::unique_ptr<util::ThreadPool> background_;  // snapshot writer
  // Async commit->LineageStore pipeline (LineageMode::kAsync only).
  // Declared after lineage_store_: destroyed first, draining in-flight
  // applies while the store is still alive.
  std::unique_ptr<CascadePipeline> cascade_;
  // Observability loops: their probes read cascade_ and the stores, so
  // they are declared after them (destroyed first) and additionally stopped
  // explicitly at the top of ~AionStore, before cascade_ resets.
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::HealthWatchdog> watchdog_;
  // Storage-lifecycle pacemaker. Its rounds touch both stores and the
  // metrics, so it is declared last (destroyed first) and additionally
  // stopped explicitly at the very top of ~AionStore.
  std::unique_ptr<CompactionScheduler> scheduler_;
  std::mutex ingest_mu_;  // writer-only: readers pin epochs instead
  std::atomic<bool> snapshot_pending_{false};
  std::atomic<Timestamp> last_ingested_ts_{0};
  // Published read epoch (lazily refreshed; see PinEpoch).
  mutable std::shared_mutex epoch_mu_;
  std::shared_ptr<const PinnedEpoch> epoch_;

  // Facade-level instruments (always valid after Open).
  obs::Counter* metric_ingest_batches_ = nullptr;
  obs::Counter* metric_ingest_updates_ = nullptr;
  obs::Counter* metric_bulk_ingests_ = nullptr;
  obs::Counter* metric_cascade_batches_ = nullptr;
  obs::Counter* metric_fallback_ = nullptr;
  obs::Counter* metric_epoch_reads_ = nullptr;
  obs::Counter* metric_epoch_refreshes_ = nullptr;
  obs::Gauge* gauge_ingest_last_ts_ = nullptr;
  obs::Gauge* gauge_cascade_applied_ = nullptr;
  obs::Gauge* gauge_watermark_lag_ = nullptr;  // cascade.watermark_lag_nanos
  obs::Histogram* metric_commit_latency_ = nullptr;
  obs::Histogram* metric_reader_wait_ = nullptr;
  // Lifecycle instruments (registered unconditionally so the exported
  // metric name set does not depend on the retention configuration).
  obs::Counter* metric_compaction_bytes_ = nullptr;
  obs::Counter* metric_compaction_segments_ = nullptr;
  obs::Counter* metric_compaction_records_ = nullptr;
  obs::Counter* metric_compaction_snapshots_ = nullptr;
  obs::Counter* metric_chain_rewrites_ = nullptr;
  obs::Gauge* gauge_logical_floor_ = nullptr;
  obs::Gauge* gauge_physical_floor_ = nullptr;
};

}  // namespace aion::core

#endif  // AION_CORE_AION_H_
