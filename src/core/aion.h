// AionStore: the temporal graph system of the paper (Fig 4). It combines
//   * GraphStore    — LRU snapshot cache + synchronously maintained latest
//                     graph replica,
//   * TimeStore     — time-indexed update log + snapshots (global queries),
//   * LineageStore  — entity-indexed history (point/subgraph queries),
// behind the temporal graph API of Table 1, and plugs into the host
// database as an after-commit TransactionEventListener.
//
// Commit path (Sec 5.1 stage 2): only the TimeStore (and the latest-graph
// replica) are updated synchronously; background workers cascade updates to
// the LineageStore and create snapshots under the policy. When the
// LineageStore lags behind a query's timestamp, Aion transparently falls
// back to the TimeStore at a performance penalty.
//
// Store selection (Sec 5.1/6.3): queries estimated to touch less than 30%
// of the graph use the LineageStore; otherwise a full snapshot is
// constructed with the TimeStore.
#ifndef AION_CORE_AION_H_
#define AION_CORE_AION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/graphstore.h"
#include "core/lineagestore.h"
#include "core/statistics.h"
#include "core/timestore.h"
#include "graph/graph_view.h"
#include "graph/temporal_graph.h"
#include "txn/graphdb.h"
#include "txn/listener.h"
#include "util/thread_pool.h"

namespace aion::core {

class AionStore : public txn::TransactionEventListener {
 public:
  /// How LineageStore updates reach disk (Fig 9 compares these modes).
  enum class LineageMode {
    kAsync,     // default: background cascade off the commit path
    kSync,      // updated inside the commit path (TS+LS of Fig 9)
    kDisabled,  // TimeStore only
  };

  struct Options {
    std::string dir;
    LineageMode lineage_mode = LineageMode::kAsync;
    bool enable_timestore = true;  // off = LineageStore-only (Fig 9 "LS")
    SnapshotPolicy snapshot_policy;
    uint32_t materialization_threshold = 4;
    size_t graphstore_capacity_bytes = size_t{1} << 30;
    /// LineageStore is chosen when the estimated accessed fraction is below
    /// this threshold (Sec 6.3 fixes it at 30%).
    double lineage_fraction_threshold = 0.3;
    size_t index_cache_pages = 512;
  };

  static util::StatusOr<std::unique_ptr<AionStore>> Open(
      const Options& options);

  ~AionStore() override;

  AionStore(const AionStore&) = delete;
  AionStore& operator=(const AionStore&) = delete;

  // -------------------------------------------------------------------
  // Ingestion
  // -------------------------------------------------------------------

  /// TransactionEventListener: called by the host database after commit.
  /// Storage failures on this path are fail-stop (checked).
  void AfterCommit(const txn::TransactionData& data) override;

  /// Direct ingestion for embedded use without a host database. Timestamps
  /// must be monotonic.
  util::Status Ingest(Timestamp ts,
                      const std::vector<graph::GraphUpdate>& updates);

  /// Blocks until the background cascade (LineageStore, snapshots) caught
  /// up with everything ingested so far.
  void DrainBackground();

  /// Re-ingests updates committed after Aion's persisted watermark from the
  /// host database's WAL (Sec 5.1 fault tolerance).
  util::Status RecoverFrom(const txn::GraphDatabase& db);

  util::Status Flush();

  // -------------------------------------------------------------------
  // Temporal graph API (Table 1)
  // -------------------------------------------------------------------

  /// Node history between the given timestamps ([start, end); start == end
  /// means the instant state).
  util::StatusOr<std::vector<NodeVersion>> GetNode(graph::NodeId id,
                                                   Timestamp start,
                                                   Timestamp end);

  /// Relationship history between the given timestamps.
  util::StatusOr<std::vector<RelationshipVersion>> GetRelationship(
      graph::RelId id, Timestamp start, Timestamp end);

  /// A node's (in/out) relationship history.
  util::StatusOr<std::vector<std::vector<RelationshipVersion>>>
  GetRelationships(graph::NodeId id, Direction direction, Timestamp start,
                   Timestamp end);

  /// A node's n-hop neighbourhood at time t (result[h] = nodes at hop h+1).
  /// Chooses LineageStore or TimeStore via the cardinality heuristic.
  util::StatusOr<std::vector<std::vector<graph::Node>>> Expand(
      graph::NodeId id, Direction direction, uint32_t hops, Timestamp t);

  /// Table 1's full expand signature: the n-hop history over [start, end),
  /// one expansion per `step` time units.
  struct TimedExpansion {
    Timestamp at = 0;
    std::vector<std::vector<graph::Node>> hops;
  };
  util::StatusOr<std::vector<TimedExpansion>> ExpandOverTime(
      graph::NodeId id, Direction direction, uint32_t hops, Timestamp start,
      Timestamp end, Timestamp step);

  /// The difference between two time instances: updates with
  /// start < ts <= end.
  util::StatusOr<std::vector<graph::GraphUpdate>> GetDiff(Timestamp start,
                                                          Timestamp end);

  /// The graph as of time t.
  util::StatusOr<std::shared_ptr<const graph::GraphView>> GetGraphAt(
      Timestamp t);

  /// The history of the graph between two timestamps, one snapshot per
  /// `step` time units (Table 1 getGraph).
  util::StatusOr<std::vector<std::shared_ptr<const graph::GraphView>>>
  GetGraph(Timestamp start, Timestamp end, Timestamp step);

  /// Graph window (Sec 4.1): all entities present within [start, end),
  /// including connections of present nodes valid at start.
  util::StatusOr<std::unique_ptr<graph::MemoryGraph>> GetWindow(
      Timestamp start, Timestamp end);

  /// Temporal LPG over [start, end).
  util::StatusOr<std::unique_ptr<graph::TemporalGraph>> GetTemporalGraph(
      Timestamp start, Timestamp end);

  // -------------------------------------------------------------------
  // Planner support
  // -------------------------------------------------------------------

  enum class StoreChoice { kLineageStore, kTimeStore };

  /// The store the heuristic picks for an n-hop expansion.
  StoreChoice ChooseStoreForExpand(uint32_t hops) const;

  /// Whether the LineageStore can serve a query up to `ts` right now
  /// (false = lagging cascade or disabled; TimeStore fallback applies).
  bool LineageCanServe(Timestamp ts) const;

  const GraphStatistics& stats() const { return stats_; }
  GraphStore& graph_store() { return *graph_store_; }
  TimeStore* time_store() { return time_store_.get(); }
  LineageStore* lineage_store() { return lineage_store_.get(); }

  Timestamp last_ingested_ts() const { return last_ingested_ts_; }

  /// Total temporal storage on disk.
  uint64_t SizeBytes() const;

 private:
  AionStore() = default;

  void ApplyToLineage(const std::vector<graph::GraphUpdate>& updates);
  void MaybeSnapshot(bool due);

  /// TimeStore-based fallbacks for fine-grained queries.
  util::StatusOr<std::vector<NodeVersion>> NodeHistoryViaTimeStore(
      graph::NodeId id, Timestamp start, Timestamp end);
  util::StatusOr<std::vector<RelationshipVersion>> RelHistoryViaTimeStore(
      graph::RelId id, Timestamp start, Timestamp end);
  util::StatusOr<std::vector<std::vector<graph::Node>>> ExpandViaTimeStore(
      graph::NodeId id, Direction direction, uint32_t hops, Timestamp t);

  Options options_;
  std::unique_ptr<storage::StringPool> string_pool_;
  std::unique_ptr<GraphStore> graph_store_;
  std::unique_ptr<TimeStore> time_store_;
  std::unique_ptr<LineageStore> lineage_store_;
  GraphStatistics stats_;
  std::unique_ptr<util::ThreadPool> background_;  // 1 worker: ordered cascade
  std::mutex ingest_mu_;
  std::atomic<bool> snapshot_pending_{false};
  Timestamp last_ingested_ts_ = 0;
};

}  // namespace aion::core

#endif  // AION_CORE_AION_H_
