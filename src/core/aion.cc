#include "core/aion.h"

#include <algorithm>
#include <thread>

#include "graph/cow_graph.h"
#include "obs/trace.h"
#include "storage/file.h"
#include "util/logging.h"

namespace aion::core {

using graph::GraphUpdate;
using graph::UpdateOp;
using util::Status;
using util::StatusOr;

AionStore::~AionStore() {
  // The compaction scheduler mutates both stores; stop it before anything
  // else so no round overlaps teardown.
  if (scheduler_ != nullptr) scheduler_->Stop();
  // Observability loops next: their probes read the cascade and the
  // stores, so they must stop before anything underneath tears down.
  if (watchdog_ != nullptr) watchdog_->Stop();
  if (flight_ != nullptr) flight_->Stop();
  // Drain the cascade before the snapshot worker: a queued cascade item may
  // still mark a snapshot due, never the other way around.
  cascade_.reset();
  if (background_ != nullptr) background_->Wait();
}

StatusOr<std::unique_ptr<AionStore>> AionStore::Open(const Options& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("AionStore options: dir must not be empty");
  }
  if (!(options.lineage_fraction_threshold > 0.0) ||
      options.lineage_fraction_threshold > 1.0) {
    return Status::InvalidArgument(
        "AionStore options: lineage_fraction_threshold must be in (0, 1]");
  }
  if (options.index_cache_pages == 0) {
    return Status::InvalidArgument(
        "AionStore options: index_cache_pages must be positive");
  }
  if (options.graphstore_shards == 0) {
    return Status::InvalidArgument(
        "AionStore options: graphstore_shards must be positive");
  }
  if (options.cascade_workers == 0 || options.cascade_workers > 64) {
    return Status::InvalidArgument(
        "AionStore options: cascade_workers must be in [1, 64]");
  }
  if (options.cascade_queue_capacity == 0) {
    return Status::InvalidArgument(
        "AionStore options: cascade_queue_capacity must be positive");
  }
  if (options.flight_ring_capacity == 0) {
    return Status::InvalidArgument(
        "AionStore options: flight_ring_capacity must be positive");
  }
  if (!(options.health_min_snapshot_hit_rate >= 0.0) ||
      options.health_min_snapshot_hit_rate > 1.0) {
    return Status::InvalidArgument(
        "AionStore options: health_min_snapshot_hit_rate must be in [0, 1]");
  }
  if (options.workload_max_sessions == 0) {
    return Status::InvalidArgument(
        "AionStore options: workload_max_sessions must be positive");
  }
  AION_RETURN_IF_ERROR(storage::CreateDirIfMissing(options.dir));
  std::unique_ptr<AionStore> store(new AionStore());
  store->options_ = options;
  store->metrics_ = std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry* metrics = store->metrics_.get();
  {
    obs::SlowQueryLog::Options slow_options;
    slow_options.threshold_nanos = options.slow_query_threshold_nanos;
    slow_options.path = options.slow_query_log_path;
    if (slow_options.threshold_nanos > 0 && slow_options.path.empty()) {
      slow_options.path = options.dir + "/slowlog.jsonl";
    }
    store->slow_log_ = std::make_unique<obs::SlowQueryLog>(slow_options);
  }
  {
    obs::WorkloadRegistry::Options workload_options;
    workload_options.max_sessions = options.workload_max_sessions;
    store->workload_ =
        std::make_unique<obs::WorkloadRegistry>(metrics, workload_options);
    obs::WorkloadCapture::Options capture_options;
    capture_options.path = options.capture_path;
    capture_options.max_file_bytes = options.capture_max_file_bytes;
    store->capture_ = std::make_unique<obs::WorkloadCapture>(capture_options);
  }
  AION_ASSIGN_OR_RETURN(store->string_pool_,
                        storage::StringPool::Open(options.dir + "/strings"));
  store->graph_store_ = std::make_unique<GraphStore>(
      options.graphstore_capacity_bytes, metrics, options.graphstore_shards);
  // Shared reader pool: parallel log decode during replay. Sized before the
  // TimeStore, which keeps a raw pointer. 0 = auto (at least 2 so the
  // parallel path is exercised even on small machines).
  size_t read_threads = options.read_threads;
  if (read_threads == 0) {
    read_threads = std::clamp<size_t>(std::thread::hardware_concurrency(),
                                      size_t{2}, size_t{16});
  }
  store->read_pool_ = std::make_unique<util::ThreadPool>(read_threads);
  if (options.enable_timestore) {
    TimeStore::Options ts_options;
    ts_options.dir = options.dir + "/timestore";
    ts_options.policy = options.snapshot_policy;
    ts_options.index_cache_pages = options.index_cache_pages;
    ts_options.target_segment_bytes = options.segment_target_bytes;
    ts_options.crash_point = options.compaction_crash_point;
    ts_options.metrics = metrics;
    ts_options.replay_pool = store->read_pool_.get();
    AION_ASSIGN_OR_RETURN(store->time_store_,
                          TimeStore::Open(ts_options, store->graph_store_.get()));
  }
  if (options.lineage_mode != LineageMode::kDisabled) {
    LineageStore::Options ls_options;
    ls_options.dir = options.dir + "/lineagestore";
    ls_options.materialization_threshold = options.materialization_threshold;
    ls_options.index_cache_pages = options.index_cache_pages;
    ls_options.metrics = metrics;
    AION_ASSIGN_OR_RETURN(
        store->lineage_store_,
        LineageStore::Open(ls_options, store->string_pool_.get()));
  }
  store->metric_ingest_batches_ = metrics->counter("ingest.batches");
  store->metric_ingest_updates_ = metrics->counter("ingest.updates");
  store->metric_bulk_ingests_ = metrics->counter("ingest.bulk_ingests");
  store->metric_cascade_batches_ = metrics->counter("cascade.batches_applied");
  store->metric_fallback_ = metrics->counter("fallback.timestore");
  store->metric_epoch_reads_ = metrics->counter("aion.epoch_reads");
  store->metric_epoch_refreshes_ = metrics->counter("aion.epoch_refreshes");
  store->gauge_ingest_last_ts_ = metrics->gauge("ingest.last_ts");
  store->gauge_cascade_applied_ = metrics->gauge("cascade.applied_ts");
  store->gauge_watermark_lag_ = metrics->gauge("cascade.watermark_lag_nanos");
  store->metric_commit_latency_ = metrics->histogram("ingest.commit_nanos");
  store->metric_reader_wait_ = metrics->histogram("aion.reader_wait_nanos");
  // Lifecycle instruments resolve in every configuration so the exported
  // metric name set does not depend on the retention settings.
  store->metric_compaction_bytes_ =
      metrics->counter("compaction.bytes_reclaimed");
  store->metric_compaction_segments_ =
      metrics->counter("compaction.segments_dropped");
  store->metric_compaction_records_ =
      metrics->counter("compaction.records_dropped");
  store->metric_compaction_snapshots_ =
      metrics->counter("compaction.snapshots_dropped");
  store->metric_chain_rewrites_ = metrics->counter("compaction.chain_rewrites");
  store->gauge_logical_floor_ = metrics->gauge("compaction.logical_floor");
  store->gauge_physical_floor_ = metrics->gauge("compaction.physical_floor");
  // Parallel-executor instruments resolve here (not just in the query
  // engine) so the exec.* name-set exists in every store's export — the
  // bench-smoke metrics_diff gate pins it.
  metrics->counter("exec.morsels_dispatched");
  metrics->counter("exec.parallel_queries");
  metrics->counter("exec.sequential_queries");
  metrics->gauge("exec.parallel_fraction_permille");
  {
    CsrCache::Options csr_options;
    csr_options.capacity_bytes = options.csr_cache_capacity_bytes;
    CsrCache::Instruments csr_instruments;
    csr_instruments.hits = metrics->counter("exec.csr_cache_hits");
    csr_instruments.misses = metrics->counter("exec.csr_cache_misses");
    csr_instruments.builds = metrics->counter("exec.csr_cache_builds");
    csr_instruments.evictions = metrics->counter("exec.csr_cache_evictions");
    csr_instruments.bytes = metrics->gauge("exec.csr_cache_bytes");
    store->csr_cache_ =
        std::make_unique<CsrCache>(csr_options, csr_instruments);
  }
  // Cascade instruments resolve in every mode so the exported metric name
  // set does not depend on LineageMode.
  obs::Gauge* cascade_depth = metrics->gauge("cascade.queue_depth");
  obs::Counter* cascade_enqueued = metrics->counter("cascade.enqueued");
  obs::Counter* cascade_backpressure =
      metrics->counter("cascade.backpressure_events");
  obs::Counter* cascade_shard_tasks = metrics->counter("cascade.shard_tasks");
  obs::Histogram* cascade_wait =
      metrics->histogram("cascade.enqueue_wait_nanos");
  // A single background worker writes snapshots; the commit->LineageStore
  // cascade (Sec 5.1) runs on its own sharded pipeline below.
  store->background_ = std::make_unique<util::ThreadPool>(1);
  if (store->lineage_store_ != nullptr &&
      options.lineage_mode == LineageMode::kAsync) {
    CascadePipeline::Options cascade_options;
    cascade_options.workers = options.cascade_workers;
    cascade_options.queue_capacity = options.cascade_queue_capacity;
    cascade_options.initial_applied_ts = store->lineage_store_->applied_ts();
    cascade_options.queue_depth = cascade_depth;
    cascade_options.applied_ts_gauge = store->gauge_cascade_applied_;
    cascade_options.enqueued = cascade_enqueued;
    cascade_options.batches_applied = store->metric_cascade_batches_;
    cascade_options.backpressure_events = cascade_backpressure;
    cascade_options.shard_tasks = cascade_shard_tasks;
    cascade_options.enqueue_wait_nanos = cascade_wait;
    LineageStore* lineage = store->lineage_store_.get();
    store->cascade_ = std::make_unique<CascadePipeline>(
        cascade_options,
        [lineage](const std::vector<GraphUpdate>& part) {
          // Fail-stop, matching the previous background worker: losing
          // lineage history silently is worse than stopping.
          AION_CHECK_OK(lineage->ApplyAll(part));
        });
  }
  // Rebuild the latest replica from history after a restart.
  if (store->time_store_ != nullptr && store->time_store_->last_ts() > 0) {
    AION_ASSIGN_OR_RETURN(
        auto latest,
        store->time_store_->MaterializeGraphAt(store->time_store_->last_ts()));
    store->graph_store_->SeedLatest(std::move(latest),
                                    store->time_store_->last_ts());
    store->last_ingested_ts_.store(store->time_store_->last_ts(),
                                   std::memory_order_release);
    // Statistics are in-memory only: rebuild them from the recovered state.
    store->graph_store_->WithLatest([&](const graph::MemoryGraph& g) {
      g.ForEachNode([&](const graph::Node& n) {
        store->stats_.Observe(GraphUpdate::AddNode(n.id, n.labels));
      });
      g.ForEachRelationship([&](const graph::Relationship& r) {
        GraphUpdate u =
            GraphUpdate::AddRelationship(r.id, r.src, r.tgt, r.type);
        if (const graph::Node* src = g.GetNode(r.src); src != nullptr) {
          u.labels = src->labels;
        }
        store->stats_.Observe(u);
      });
    });
  } else if (store->lineage_store_ != nullptr) {
    store->last_ingested_ts_.store(store->lineage_store_->applied_ts(),
                                   std::memory_order_release);
  }
  store->gauge_ingest_last_ts_->Set(
      static_cast<int64_t>(store->last_ingested_ts()));
  store->gauge_cascade_applied_->Set(
      static_cast<int64_t>(store->cascade_applied_ts()));

  // Flight recorder: continuous metric history, ring-bounded.
  {
    obs::FlightRecorder::Options flight_options;
    flight_options.period_millis = options.flight_sample_period_millis;
    flight_options.capacity = options.flight_ring_capacity;
    store->flight_ =
        std::make_unique<obs::FlightRecorder>(metrics, flight_options);
  }

  // Health watchdog: store-level checks. Probes refresh the gauges they
  // derive from, so /metrics and dbms.health() report the same numbers.
  {
    obs::HealthWatchdog::Options health_options;
    health_options.period_millis = options.health_check_period_millis;
    store->watchdog_ =
        std::make_unique<obs::HealthWatchdog>(metrics, health_options);
    AionStore* s = store.get();
    store->watchdog_->AddCheck(
        "cascade.watermark_lag",
        [s] { return static_cast<double>(s->CascadeWatermarkLagNanos()); },
        static_cast<double>(options.health_max_watermark_lag_nanos),
        obs::HealthWatchdog::Direction::kAbove);
    obs::Counter* gs_requests = metrics->counter("graphstore.requests");
    obs::Counter* gs_hits = metrics->counter("graphstore.hits");
    store->watchdog_->AddCheck(
        "graphstore.hit_rate",
        [gs_requests, gs_hits] {
          const uint64_t requests = gs_requests->value();
          if (requests == 0) return 1.0;  // a cold cache is not a fault
          return static_cast<double>(gs_hits->value()) /
                 static_cast<double>(requests);
        },
        options.health_min_snapshot_hit_rate,
        obs::HealthWatchdog::Direction::kBelow);
    // Backpressure rate: counter delta over the wall time since the last
    // evaluation (state lives in the closure; a Reset() rewinds the counter
    // below `prev`, which reads as rate 0 for one evaluation).
    auto bp_state = std::make_shared<std::pair<uint64_t, uint64_t>>(
        uint64_t{0}, obs::NowNanos());
    store->watchdog_->AddCheck(
        "cascade.backpressure_rate",
        [bp = cascade_backpressure, bp_state] {
          const uint64_t now = obs::NowNanos();
          const uint64_t count = bp->value();
          const auto [prev_count, prev_nanos] = *bp_state;
          *bp_state = {count, now};
          if (count < prev_count || now <= prev_nanos) return 0.0;
          return static_cast<double>(count - prev_count) /
                 (static_cast<double>(now - prev_nanos) / 1e9);
        },
        options.health_max_backpressure_per_sec,
        obs::HealthWatchdog::Direction::kAbove);
    // Compaction lag: how far the physical floor (data actually dropped)
    // trails the logical retention floor (where queries are gated). With
    // unbounded retention both floors are 0 and the check always passes.
    const double max_floor_lag =
        options.health_max_retention_lag > 0
            ? static_cast<double>(options.health_max_retention_lag)
            : 2.0 * static_cast<double>(options.retention_window);
    store->watchdog_->AddCheck(
        "compaction.floor_lag",
        [s] {
          const Timestamp logical = s->RetentionFloor();
          const Timestamp physical = s->time_store_ != nullptr
                                         ? s->time_store_->compaction_floor()
                                         : logical;
          return logical > physical
                     ? static_cast<double>(logical - physical)
                     : 0.0;
        },
        max_floor_lag, obs::HealthWatchdog::Direction::kAbove);
    // Longest-running statement: the probe refreshes the
    // workload.longest_running_nanos gauge. A threshold of 0 disables the
    // check (runaway scans are a policy question, not always a fault), so
    // the gauge-refreshing probe registers only when opted in.
    if (options.health_max_query_runtime_nanos > 0) {
      obs::WorkloadRegistry* workload = store->workload_.get();
      store->watchdog_->AddCheck(
          "workload.longest_running_nanos",
          [workload] {
            return static_cast<double>(workload->LongestRunningNanos());
          },
          static_cast<double>(options.health_max_query_runtime_nanos),
          obs::HealthWatchdog::Direction::kAbove);
    }
    // Dump-on-fault: preserve the minutes leading up to a degradation.
    obs::FlightRecorder* flight = store->flight_.get();
    const std::string dump_path = options.dir + "/flight_degraded.json";
    store->watchdog_->OnDegraded(
        [flight, dump_path](const obs::HealthReport&) {
          flight->SampleNow();  // capture the degraded instant itself
          // Best-effort: a failed dump must not escalate the degradation.
          const util::Status dumped = flight->DumpToFile(dump_path);
          (void)dumped;
        });
  }
  // Storage-lifecycle pacemaker. Constructed in every configuration (so
  // CompactNow and the compaction.* instruments always work); the
  // background thread only spins up with a non-zero period.
  {
    CompactionScheduler::Options sched_options;
    sched_options.period_millis = options.compaction_period_millis;
    AionStore* s = store.get();
    store->scheduler_ = std::make_unique<CompactionScheduler>(
        metrics, sched_options, [s] { return s->CompactionRound(); });
  }
  store->flight_->Start();
  store->watchdog_->Start();
  store->scheduler_->Start();
  return store;
}

util::Status AionStore::CompactNow() { return scheduler_->RunOnce(); }

Timestamp AionStore::RetentionFloor() const {
  if (options_.retention_window == 0) return 0;
  const Timestamp last = last_ingested_ts();
  return last > options_.retention_window
             ? last - options_.retention_window
             : 0;
}

Status AionStore::CheckRetention(Timestamp earliest) const {
  if (options_.retention_window == 0) return Status::OK();
  const Timestamp floor = RetentionFloor();
  if (earliest < floor) {
    return Status::OutOfRetention(
        "timestamp " + std::to_string(earliest) +
        " is below the retention floor " + std::to_string(floor) +
        " (window " + std::to_string(options_.retention_window) + ")");
  }
  return Status::OK();
}

Status AionStore::CompactionRound() {
  TimeStore::CompactionResult round;
  const Timestamp logical_floor = RetentionFloor();
  if (time_store_ != nullptr) {
    if (logical_floor > 0) {
      AION_RETURN_IF_ERROR(time_store_->CompactUpTo(logical_floor, &round));
    }
    // No-op when snapshot GC is disabled and nothing was ever compacted.
    AION_RETURN_IF_ERROR(time_store_->GcSnapshots(
        options_.snapshot_keep_replay_records, &round));
  }
  if (lineage_store_ != nullptr && options_.lineage_max_chain > 0) {
    AION_ASSIGN_OR_RETURN(
        LineageStore::ChainCompaction chains,
        lineage_store_->CompactChains(options_.lineage_max_chain,
                                      options_.lineage_rewrites_per_round));
    metric_chain_rewrites_->Add(chains.records_rewritten);
  }
  metric_compaction_bytes_->Add(round.bytes_reclaimed);
  metric_compaction_segments_->Add(round.segments_dropped);
  metric_compaction_records_->Add(round.records_dropped);
  metric_compaction_snapshots_->Add(round.snapshots_dropped);
  gauge_logical_floor_->Set(static_cast<int64_t>(logical_floor));
  gauge_physical_floor_->Set(static_cast<int64_t>(
      time_store_ != nullptr ? time_store_->compaction_floor() : 0));
  // Projections of history below the logical floor must not outlive the
  // data they were built from (a cache hit would resurrect dropped state).
  if (csr_cache_ != nullptr && logical_floor > 0) {
    csr_cache_->EvictBelow(logical_floor);
  }
  return Status::OK();
}

AionStore::RetentionInfo AionStore::RetentionStats() const {
  RetentionInfo info;
  info.retention_window = options_.retention_window;
  info.logical_floor = RetentionFloor();
  info.compaction_rounds = scheduler_->rounds();
  if (time_store_ != nullptr) {
    info.physical_floor = time_store_->compaction_floor();
    info.segments_live = time_store_->NumSegments();
    info.segments_dropped = time_store_->total_segments_dropped();
    info.records_dropped = time_store_->total_records_dropped();
    info.bytes_reclaimed = time_store_->total_bytes_reclaimed();
    info.snapshots_live = time_store_->NumSnapshots();
    info.snapshots_dropped = time_store_->total_snapshots_dropped();
    info.log_bytes = time_store_->LogBytes();
    info.snapshot_bytes = time_store_->SnapshotBytes();
  }
  info.chains_rewritten = metric_chain_rewrites_->value();
  return info;
}

void AionStore::AttachHostDatabase(txn::GraphDatabase* db) {
  if (db == nullptr) return;
  db->AttachMetrics(metrics_.get());
  watchdog_->AddCheck(
      "txn.commit_queue_age",
      [db] { return static_cast<double>(db->CommitQueueAgeNanos()); },
      static_cast<double>(options_.health_max_commit_queue_age_nanos),
      obs::HealthWatchdog::Direction::kAbove);
  obs::Histogram* wal_sync = metrics_->histogram("txn.wal_sync_nanos");
  watchdog_->AddCheck(
      "txn.wal_sync_p99",
      [wal_sync] {
        return static_cast<double>(wal_sync->Summarize().p99);
      },
      static_cast<double>(options_.health_max_wal_sync_p99_nanos),
      obs::HealthWatchdog::Direction::kAbove);
}

uint64_t AionStore::CascadeWatermarkLagNanos() const {
  const uint64_t lag =
      cascade_ != nullptr ? cascade_->WatermarkLagNanos() : 0;
  gauge_watermark_lag_->Set(static_cast<int64_t>(lag));
  return lag;
}

void AionStore::AfterCommit(const txn::TransactionData& data) {
  // Fail-stop on the commit path: a temporal-storage failure here would
  // silently lose history otherwise. The listener always blocks on a full
  // cascade queue — surfacing backpressure here would abort the process.
  std::vector<WriteBatch::TxnGroup> groups(1);
  groups[0].ts = data.commit_ts;
  groups[0].updates = data.updates;
  AION_CHECK_OK(IngestGroups(std::move(groups), /*force_block=*/true));
}

Status AionStore::Ingest(Timestamp ts,
                         const std::vector<GraphUpdate>& updates) {
  std::vector<WriteBatch::TxnGroup> groups(1);
  groups[0].ts = ts;
  groups[0].updates = updates;
  return IngestGroups(std::move(groups), /*force_block=*/false);
}

Status AionStore::IngestBatch(WriteBatch&& batch) {
  if (batch.empty()) return Status::OK();
  AION_RETURN_IF_ERROR(
      IngestGroups(std::move(batch).Release(), /*force_block=*/false));
  metric_bulk_ingests_->Add();
  return Status::OK();
}

Status AionStore::IngestGroups(std::vector<WriteBatch::TxnGroup> groups,
                               bool force_block) {
  AION_TRACE_SPAN("aion.ingest");
  obs::ScopedLatency commit_latency(metric_commit_latency_);
  if (groups.empty()) return Status::OK();
  {
    Timestamp prev_ts = 0;
    for (const WriteBatch::TxnGroup& g : groups) {
      if (g.updates.empty()) {
        return Status::InvalidArgument("WriteBatch transaction is empty");
      }
      if (g.ts < prev_ts) {
        return Status::InvalidArgument(
            "WriteBatch timestamps must be nondecreasing");
      }
      prev_ts = g.ts;
    }
  }
  std::lock_guard<std::mutex> lock(ingest_mu_);
  const bool async_cascade = cascade_ != nullptr;

  // Reserve the cascade slot before touching any store: a backpressure
  // failure must leave the TimeStore, GraphStore and statistics exactly as
  // they were, so the caller can retry the whole batch.
  if (async_cascade) {
    if (force_block ||
        options_.cascade_backpressure == CascadeBackpressure::kBlock) {
      cascade_->ReserveBlocking();
    } else if (!cascade_->TryReserve()) {
      return Status::Backpressure(
          "cascade queue is full (" +
          std::to_string(options_.cascade_queue_capacity) +
          " items); retry or use CascadeBackpressure::kBlock");
    }
  }
  // From here on a failure must release the reservation.
  auto fail = [&](Status s) {
    if (async_cascade) cascade_->CancelReservation();
    return s;
  };

  const Timestamp batch_last_ts = groups.back().ts;
  // Latest replica + statistics are maintained synchronously (HTAP-style
  // snapshot replication, Sec 5.1). The whole batch applies inside one
  // MutateLatest critical section, so a concurrently pinned epoch can never
  // observe a half-applied transaction. Endpoint labels enrich pattern
  // stats, and relationship deletions get their endpoints resolved from the
  // pre-delete state so every downstream consumer (TimeStore log diffs,
  // LineageStore neighbourhood indexes, incremental algorithms) sees them.
  size_t total_updates = 0;
  Status mutate = graph_store_->MutateLatest(
      batch_last_ts, [&](graph::MemoryGraph* g) -> Status {
        for (WriteBatch::TxnGroup& group : groups) {
          // Stamp defensively (direct-ingest callers may pass unstamped
          // updates).
          for (GraphUpdate& u : group.updates) {
            u.ts = group.ts;
            if (u.op == UpdateOp::kAddRelationship) {
              GraphUpdate annotated = u;
              if (const graph::Node* src = g->GetNode(u.src);
                  src != nullptr) {
                annotated.labels = src->labels;
              }
              stats_.Observe(annotated);
            } else if (u.op == UpdateOp::kDeleteRelationship &&
                       u.src == graph::kInvalidNodeId) {
              if (const graph::Relationship* rel = g->GetRelationship(u.id);
                  rel != nullptr) {
                u.src = rel->src;
                u.tgt = rel->tgt;
              }
              stats_.Observe(u);
            } else {
              stats_.Observe(u);
            }
            AION_RETURN_IF_ERROR(g->Apply(u));
          }
          total_updates += group.updates.size();
        }
        return Status::OK();
      });
  if (!mutate.ok()) return fail(std::move(mutate));

  bool snapshot_due = false;
  if (time_store_ != nullptr) {
    Status append = time_store_->AppendBatch(groups, &snapshot_due);
    if (!append.ok()) return fail(std::move(append));
  }
  const Timestamp prev = last_ingested_ts_.load(std::memory_order_relaxed);
  if (batch_last_ts > prev) {
    last_ingested_ts_.store(batch_last_ts, std::memory_order_release);
  }
  metric_ingest_batches_->Add(groups.size());
  metric_ingest_updates_->Add(total_updates);
  gauge_ingest_last_ts_->Set(static_cast<int64_t>(last_ingested_ts()));

  if (async_cascade) {
    cascade_->EnqueueReserved(std::move(groups));
  } else if (lineage_store_ != nullptr) {
    // kSync: the cascade runs inside the commit path (TS+LS of Fig 9).
    for (const WriteBatch::TxnGroup& group : groups) {
      AION_RETURN_IF_ERROR(lineage_store_->ApplyAll(group.updates));
      metric_cascade_batches_->Add();
    }
    gauge_cascade_applied_->Set(
        static_cast<int64_t>(lineage_store_->applied_ts()));
  }
  if (snapshot_due && time_store_ != nullptr &&
      !snapshot_pending_.exchange(true)) {
    // One snapshot task at a time: the policy counter only resets when the
    // background write completes, so without this guard every commit in
    // the window would enqueue another snapshot.
    background_->Submit([this]() { MaybeSnapshot(true); });
  }
  return Status::OK();
}

void AionStore::MaybeSnapshot(bool due) {
  if (!due || time_store_ == nullptr) return;
  Timestamp ts = 0;
  const auto latest = graph_store_->Latest(&ts);
  AION_CHECK_OK(time_store_->WriteSnapshot(ts, *latest));
  graph_store_->Put(ts, latest);
  snapshot_pending_.store(false);
}

void AionStore::DrainBackground() {
  if (cascade_ != nullptr) cascade_->Drain();
  background_->Wait();
}

Status AionStore::RecoverFrom(const txn::GraphDatabase& db) {
  const Timestamp have =
      time_store_ != nullptr ? time_store_->last_ts() : last_ingested_ts();
  // Replay in chunks so recovery enjoys the batched write path (one log
  // write + one sorted index load per chunk) without buffering the whole
  // history in memory.
  constexpr size_t kReplayChunk = 256;
  Status status = Status::OK();
  std::vector<WriteBatch::TxnGroup> chunk;
  chunk.reserve(kReplayChunk);
  auto flush_chunk = [&] {
    if (!status.ok() || chunk.empty()) return;
    status = IngestGroups(std::move(chunk), /*force_block=*/true);
    chunk.clear();
    chunk.reserve(kReplayChunk);
  };
  AION_RETURN_IF_ERROR(db.ReplayUpdatesSince(
      have, [&](const txn::TransactionData& data) {
        if (!status.ok()) return;
        WriteBatch::TxnGroup group;
        group.ts = data.commit_ts;
        group.updates = data.updates;
        chunk.push_back(std::move(group));
        if (chunk.size() >= kReplayChunk) flush_chunk();
      }));
  flush_chunk();
  return status;
}

Status AionStore::Flush() {
  DrainBackground();
  if (time_store_ != nullptr) AION_RETURN_IF_ERROR(time_store_->Flush());
  if (lineage_store_ != nullptr) {
    AION_RETURN_IF_ERROR(lineage_store_->Flush());
  }
  return Status::OK();
}

uint64_t AionStore::SizeBytes() const {
  uint64_t total = string_pool_->SizeBytes();
  if (time_store_ != nullptr) total += time_store_->SizeBytes();
  if (lineage_store_ != nullptr) total += lineage_store_->SizeBytes();
  return total;
}

// ---------------------------------------------------------------------------
// Planner support
// ---------------------------------------------------------------------------

bool AionStore::LineageCanServe(Timestamp ts) const {
  if (lineage_store_ == nullptr) return false;
  if (options_.lineage_mode == LineageMode::kSync) return true;
  return cascade_applied_ts() >= std::min(ts, last_ingested_ts());
}

AionStore::StoreChoice AionStore::ChooseStoreForExpand(uint32_t hops) const {
  if (lineage_store_ == nullptr) return StoreChoice::kTimeStore;
  if (time_store_ == nullptr) return StoreChoice::kLineageStore;
  const double fraction = stats_.EstimateExpandFraction(hops);
  // Cost-based routing once both routes have been measured enough times:
  // estimated touched nodes x measured nanos-per-node, plus the TimeStore's
  // snapshot-materialization term. Until then (fresh store, routes never
  // exercised) the Sec 6.3 fraction heuristic decides, unchanged.
  if (cost_model_.confident()) {
    const double est_nodes =
        fraction * static_cast<double>(std::max<int64_t>(stats_.num_nodes(), 1));
    return cost_model_.EstimateLineageCost(est_nodes) <=
                   cost_model_.EstimateTimeStoreCost(est_nodes)
               ? StoreChoice::kLineageStore
               : StoreChoice::kTimeStore;
  }
  return fraction < options_.lineage_fraction_threshold
             ? StoreChoice::kLineageStore
             : StoreChoice::kTimeStore;
}

// ---------------------------------------------------------------------------
// Table 1 API
// ---------------------------------------------------------------------------

namespace {

/// Retention semantics at the facade: history strictly below the floor is
/// never reported, so a version that began before the floor reports the
/// floor as its start — regardless of which store served the query and of
/// whether compaction already dropped the prefix physically. This is what
/// keeps in-window results byte-identical before and after compaction.
template <typename Versions>
void ClampVersionsToFloor(Timestamp floor, Versions* versions) {
  if (floor == 0) return;
  for (auto& v : *versions) {
    if (v.interval.start < floor) v.interval.start = floor;
  }
}

}  // namespace

StatusOr<std::vector<NodeVersion>> AionStore::GetNode(graph::NodeId id,
                                                      Timestamp start,
                                                      Timestamp end) {
  AION_RETURN_IF_ERROR(CheckRetention(start));
  if (LineageCanServe(std::max(start, end))) {
    AION_ASSIGN_OR_RETURN(std::vector<NodeVersion> versions,
                          lineage_store_->GetNode(id, start, end));
    ClampVersionsToFloor(RetentionFloor(), &versions);
    return versions;
  }
  if (time_store_ != nullptr) {
    // Lagging cascade or disabled LineageStore: fall back to the TimeStore
    // at a performance penalty (Sec 5.1).
    CountFallback();
    AION_ASSIGN_OR_RETURN(std::vector<NodeVersion> versions,
                          NodeHistoryViaTimeStore(id, start, end));
    ClampVersionsToFloor(RetentionFloor(), &versions);
    return versions;
  }
  return Status::FailedPrecondition("no temporal store can serve the query");
}

StatusOr<std::vector<RelationshipVersion>> AionStore::GetRelationship(
    graph::RelId id, Timestamp start, Timestamp end) {
  AION_RETURN_IF_ERROR(CheckRetention(start));
  if (LineageCanServe(std::max(start, end))) {
    AION_ASSIGN_OR_RETURN(std::vector<RelationshipVersion> versions,
                          lineage_store_->GetRelationship(id, start, end));
    ClampVersionsToFloor(RetentionFloor(), &versions);
    return versions;
  }
  if (time_store_ != nullptr) {
    CountFallback();
    AION_ASSIGN_OR_RETURN(std::vector<RelationshipVersion> versions,
                          RelHistoryViaTimeStore(id, start, end));
    ClampVersionsToFloor(RetentionFloor(), &versions);
    return versions;
  }
  return Status::FailedPrecondition("no temporal store can serve the query");
}

StatusOr<std::vector<std::vector<RelationshipVersion>>>
AionStore::GetRelationships(graph::NodeId id, Direction direction,
                            Timestamp start, Timestamp end) {
  AION_RETURN_IF_ERROR(CheckRetention(start));
  if (LineageCanServe(std::max(start, end))) {
    AION_ASSIGN_OR_RETURN(
        std::vector<std::vector<RelationshipVersion>> histories,
        lineage_store_->GetRelationships(id, direction, start, end));
    for (auto& history : histories) {
      ClampVersionsToFloor(RetentionFloor(), &history);
    }
    return histories;
  }
  if (time_store_ == nullptr) {
    return Status::FailedPrecondition("no temporal store can serve the query");
  }
  // TimeStore fallback: find the relationships incident to the node in the
  // seeded base graph and the surviving log, then reconstruct each history
  // (expensive; the documented penalty of the lagging cascade). No entity
  // filter here: kDeleteRelationship records carry no endpoints, so a
  // bloom-pruned scan could miss segments this node's history lives in.
  CountFallback();
  const Timestamp scan_last =
      end <= start ? (start == graph::kInfiniteTime ? start : start + 1)
                   : end;
  AION_ASSIGN_OR_RETURN(TimeStore::SeededUpdates seeded,
                        time_store_->SeededReplay(scan_last, nullptr));
  // Incident relationship ids, in id order: deterministic no matter how
  // the base-snapshot/log split shifts underneath (compaction moves the
  // boundary; the result set must not move with it).
  std::map<graph::RelId, bool> incident;
  auto consider = [&](graph::RelId rel, graph::NodeId src,
                      graph::NodeId tgt) {
    if (src != id && tgt != id) return;
    const bool matches =
        direction == Direction::kBoth ||
        (direction == Direction::kOutgoing && src == id) ||
        (direction == Direction::kIncoming && tgt == id);
    if (matches) incident.emplace(rel, true);
  };
  if (seeded.base != nullptr) {
    seeded.base->ForEachRelationship([&](const graph::Relationship& r) {
      consider(r.id, r.src, r.tgt);
    });
  }
  for (const GraphUpdate& u : seeded.updates) {
    if (u.op == UpdateOp::kAddRelationship) consider(u.id, u.src, u.tgt);
  }
  std::vector<std::vector<RelationshipVersion>> result;
  for (const auto& [rel, unused] : incident) {
    AION_ASSIGN_OR_RETURN(std::vector<RelationshipVersion> history,
                          RelHistoryViaTimeStore(rel, start, end));
    ClampVersionsToFloor(RetentionFloor(), &history);
    if (!history.empty()) result.push_back(std::move(history));
  }
  return result;
}

namespace {

size_t CountExpansionNodes(const std::vector<std::vector<graph::Node>>& hops) {
  size_t nodes = 0;
  for (const std::vector<graph::Node>& level : hops) nodes += level.size();
  return nodes;
}

}  // namespace

StatusOr<std::vector<std::vector<graph::Node>>> AionStore::Expand(
    graph::NodeId id, Direction direction, uint32_t hops, Timestamp t) {
  AION_RETURN_IF_ERROR(CheckRetention(t));
  const StoreChoice choice = ChooseStoreForExpand(hops);
  // Both routes are timed end to end: each execution is a cost-model
  // observation, so routing converges to measured behaviour.
  if (choice == StoreChoice::kLineageStore && LineageCanServe(t)) {
    const uint64_t start = obs::NowNanos();
    StatusOr<std::vector<std::vector<graph::Node>>> result =
        lineage_store_->Expand(id, direction, hops, t);
    if (result.ok()) {
      cost_model_.ObserveLineageExpand(obs::NowNanos() - start,
                                       CountExpansionNodes(*result));
    }
    return result;
  }
  if (time_store_ != nullptr) {
    // Either the heuristic picked the TimeStore or the cascade is lagging;
    // only the latter counts as a fallback.
    if (choice == StoreChoice::kLineageStore) CountFallback();
    const uint64_t start = obs::NowNanos();
    StatusOr<std::vector<std::vector<graph::Node>>> result =
        ExpandViaTimeStore(id, direction, hops, t);
    if (result.ok()) {
      cost_model_.ObserveTimeStoreExpand(obs::NowNanos() - start,
                                         CountExpansionNodes(*result));
    }
    return result;
  }
  if (lineage_store_ != nullptr) {
    return lineage_store_->Expand(id, direction, hops, t);
  }
  return Status::FailedPrecondition("no temporal store can serve the query");
}

StatusOr<std::vector<std::vector<graph::Node>>> AionStore::ExpandUsing(
    StoreChoice store, graph::NodeId id, Direction direction, uint32_t hops,
    Timestamp t) {
  AION_RETURN_IF_ERROR(CheckRetention(t));
  if (store == StoreChoice::kLineageStore) {
    if (lineage_store_ == nullptr) {
      return Status::FailedPrecondition("LineageStore is disabled");
    }
    return lineage_store_->Expand(id, direction, hops, t);
  }
  if (time_store_ == nullptr) {
    return Status::FailedPrecondition("TimeStore is disabled");
  }
  return ExpandViaTimeStore(id, direction, hops, t);
}

StatusOr<std::vector<AionStore::TimedExpansion>> AionStore::ExpandOverTime(
    graph::NodeId id, Direction direction, uint32_t hops, Timestamp start,
    Timestamp end, Timestamp step) {
  if (step == 0) return Status::InvalidArgument("step must be positive");
  if (end < start) return Status::InvalidArgument("end before start");
  AION_RETURN_IF_ERROR(CheckRetention(start));
  std::vector<TimedExpansion> out;
  for (Timestamp t = start; t <= end;) {
    TimedExpansion expansion;
    expansion.at = t;
    AION_ASSIGN_OR_RETURN(expansion.hops, Expand(id, direction, hops, t));
    out.push_back(std::move(expansion));
    if (end - t < step) break;  // overflow-safe advance
    t += step;
  }
  return out;
}

StatusOr<std::vector<GraphUpdate>> AionStore::GetDiff(Timestamp start,
                                                      Timestamp end) {
  if (time_store_ == nullptr) {
    return Status::FailedPrecondition("getDiff requires the TimeStore");
  }
  AION_RETURN_IF_ERROR(CheckRetention(start));
  return time_store_->GetDiff(start, end);
}

StatusOr<std::shared_ptr<const graph::GraphView>> AionStore::GetGraphAt(
    Timestamp t) {
  if (time_store_ == nullptr) {
    return Status::FailedPrecondition("global queries require the TimeStore");
  }
  // Gate before the epoch fast path: the pinned latest graph could serve a
  // below-floor t, but results must not depend on which path answers.
  AION_RETURN_IF_ERROR(CheckRetention(t));
  // Epoch fast path: the pin is at least as new as every completed ingest,
  // so epoch.ts <= t means no committed update existed in (epoch.ts, t]
  // when the pin was taken — the pinned graph *is* the graph at t.
  auto epoch = PinEpoch();
  if (epoch != nullptr && epoch->graph != nullptr && epoch->ts <= t) {
    if (metric_epoch_reads_ != nullptr) metric_epoch_reads_->Add();
    return std::shared_ptr<const graph::GraphView>(epoch->graph);
  }
  return time_store_->GetGraphAt(t);
}

StatusOr<std::shared_ptr<const graph::CsrGraph>> AionStore::ProjectCsrAt(
    Timestamp t, const std::string& weight_property) {
  AION_RETURN_IF_ERROR(CheckRetention(t));
  // Key normalization: when the pinned epoch serves t (no ingest landed in
  // (epoch.ts, t]), every such t maps to the epoch's timestamp — repeated
  // analytics at "now-ish" instants share one cache entry.
  Timestamp key_ts = t;
  std::shared_ptr<const graph::GraphView> pinned;
  auto epoch = PinEpoch();
  if (epoch != nullptr && epoch->graph != nullptr && epoch->ts <= t) {
    key_ts = epoch->ts;
    pinned = epoch->graph;
  }
  return csr_cache_->GetOrBuild(
      key_ts, weight_property,
      [&]() -> StatusOr<std::shared_ptr<const graph::CsrGraph>> {
        std::shared_ptr<const graph::GraphView> view = pinned;
        if (view == nullptr) {
          AION_ASSIGN_OR_RETURN(view, GetGraphAt(t));
        }
        return std::shared_ptr<const graph::CsrGraph>(
            std::make_shared<graph::CsrGraph>(
                graph::CsrGraph::Build(*view, weight_property)));
      });
}

StatusOr<std::vector<std::shared_ptr<const graph::GraphView>>>
AionStore::GetGraph(Timestamp start, Timestamp end, Timestamp step) {
  if (step == 0) return Status::InvalidArgument("step must be positive");
  if (end < start) return Status::InvalidArgument("end before start");
  std::vector<std::shared_ptr<const graph::GraphView>> out;
  for (Timestamp t = start; t <= end;) {
    AION_ASSIGN_OR_RETURN(auto view, GetGraphAt(t));
    out.push_back(std::move(view));
    if (end - t < step) break;  // overflow-safe advance
    t += step;
  }
  return out;
}

StatusOr<std::unique_ptr<graph::MemoryGraph>> AionStore::GetWindow(
    Timestamp start, Timestamp end) {
  if (time_store_ == nullptr) {
    return Status::FailedPrecondition("getWindow requires the TimeStore");
  }
  AION_RETURN_IF_ERROR(CheckRetention(start));
  AION_ASSIGN_OR_RETURN(auto window, time_store_->MaterializeGraphAt(start));
  AION_ASSIGN_OR_RETURN(std::vector<GraphUpdate> diff,
                        time_store_->GetDiff(start, end));
  // All entities present in the window are kept: additions and
  // modifications apply, deletions are ignored (Sec 4.1).
  for (const GraphUpdate& u : diff) {
    switch (u.op) {
      case UpdateOp::kDeleteNode:
      case UpdateOp::kDeleteRelationship:
        break;
      case UpdateOp::kAddNode:
        if (window->GetNode(u.id) == nullptr) {
          AION_RETURN_IF_ERROR(window->Apply(u));
        }
        break;
      case UpdateOp::kAddRelationship:
        if (window->GetRelationship(u.id) == nullptr) {
          AION_RETURN_IF_ERROR(window->Apply(u));
        }
        break;
      default: {
        // Property/label changes apply when the entity is present.
        const Status s = window->Apply(u);
        if (!s.ok() && !s.IsFailedPrecondition()) return s;
        break;
      }
    }
  }
  return window;
}

StatusOr<std::unique_ptr<graph::TemporalGraph>> AionStore::GetTemporalGraph(
    Timestamp start, Timestamp end) {
  if (time_store_ == nullptr) {
    return Status::FailedPrecondition(
        "getTemporalGraph requires the TimeStore");
  }
  AION_RETURN_IF_ERROR(CheckRetention(start));
  AION_ASSIGN_OR_RETURN(auto base, time_store_->MaterializeGraphAt(start));
  auto temporal = std::make_unique<graph::TemporalGraph>();
  Status status = Status::OK();
  base->ForEachNode([&](const graph::Node& n) {
    if (!status.ok()) return;
    GraphUpdate u = GraphUpdate::AddNode(n.id, n.labels, n.props);
    u.ts = start;
    status = temporal->Apply(u);
  });
  AION_RETURN_IF_ERROR(status);
  base->ForEachRelationship([&](const graph::Relationship& r) {
    if (!status.ok()) return;
    GraphUpdate u =
        GraphUpdate::AddRelationship(r.id, r.src, r.tgt, r.type, r.props);
    u.ts = start;
    status = temporal->Apply(u);
  });
  AION_RETURN_IF_ERROR(status);
  if (end > start) {
    // The base already reflects every update at ts <= start, so replay the
    // remainder of the half-open window: (start, end) = (start, end - 1].
    AION_ASSIGN_OR_RETURN(std::vector<GraphUpdate> diff,
                          time_store_->ReplayRange(start, end - 1));
    AION_RETURN_IF_ERROR(temporal->ApplyAll(diff));
  }
  return temporal;
}

// ---------------------------------------------------------------------------
// Single-instant conveniences
// ---------------------------------------------------------------------------

StatusOr<std::optional<graph::Node>> AionStore::GetNodeAt(graph::NodeId id,
                                                          Timestamp t) {
  AION_RETURN_IF_ERROR(CheckRetention(t));
  if (LineageCanServe(t)) return lineage_store_->GetNodeAt(id, t);
  if (time_store_ != nullptr) {
    CountFallback();
    AION_ASSIGN_OR_RETURN(std::vector<NodeVersion> versions,
                          NodeHistoryViaTimeStore(id, t, t));
    if (versions.empty()) return std::optional<graph::Node>{};
    return std::optional<graph::Node>(std::move(versions.front().entity));
  }
  return Status::FailedPrecondition("no temporal store can serve the query");
}

StatusOr<std::optional<graph::Relationship>> AionStore::GetRelationshipAt(
    graph::RelId id, Timestamp t) {
  AION_RETURN_IF_ERROR(CheckRetention(t));
  if (LineageCanServe(t)) return lineage_store_->GetRelationshipAt(id, t);
  if (time_store_ != nullptr) {
    CountFallback();
    AION_ASSIGN_OR_RETURN(std::vector<RelationshipVersion> versions,
                          RelHistoryViaTimeStore(id, t, t));
    if (versions.empty()) return std::optional<graph::Relationship>{};
    return std::optional<graph::Relationship>(
        std::move(versions.front().entity));
  }
  return Status::FailedPrecondition("no temporal store can serve the query");
}

StatusOr<std::unique_ptr<graph::MemoryGraph>> AionStore::MaterializeGraphAt(
    Timestamp t) {
  if (time_store_ == nullptr) {
    return Status::FailedPrecondition("global queries require the TimeStore");
  }
  AION_RETURN_IF_ERROR(CheckRetention(t));
  // Same fast path as GetGraphAt, at the cost of one deep copy (callers
  // asked for an independent graph).
  auto epoch = PinEpoch();
  if (epoch != nullptr && epoch->graph != nullptr && epoch->ts <= t) {
    if (metric_epoch_reads_ != nullptr) metric_epoch_reads_->Add();
    return epoch->graph->Clone();
  }
  return time_store_->MaterializeGraphAt(t);
}

std::shared_ptr<const graph::MemoryGraph> AionStore::LatestGraph() {
  return graph_store_->Latest();
}

std::shared_ptr<const AionStore::PinnedEpoch> AionStore::PinEpoch() {
  obs::ScopedLatency wait(metric_reader_wait_);
  const Timestamp now_ts = last_ingested_ts_.load(std::memory_order_acquire);
  {
    std::shared_lock<std::shared_mutex> lock(epoch_mu_);
    if (epoch_ != nullptr && epoch_->ts >= now_ts) return epoch_;
  }
  std::unique_lock<std::shared_mutex> lock(epoch_mu_);
  if (epoch_ == nullptr || epoch_->ts < now_ts) {
    // Double-checked: the first writer through refreshes, the rest reuse.
    // Latest() observes at least every ingest that finished before this
    // call, so the refreshed epoch satisfies epoch.ts >= now_ts.
    auto fresh = std::make_shared<PinnedEpoch>();
    Timestamp ts = 0;
    fresh->graph = graph_store_->Latest(&ts);
    fresh->ts = ts;
    epoch_ = std::move(fresh);
    if (metric_epoch_refreshes_ != nullptr) metric_epoch_refreshes_->Add();
  }
  return epoch_;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

AionStore::Introspection AionStore::Introspect() const {
  Introspection info;
  info.last_ingested_ts = last_ingested_ts();
  info.total_bytes = SizeBytes();
  info.latest_ts = graph_store_->latest_ts();
  info.graphstore_cached_snapshots = graph_store_->cached_snapshots();
  info.graphstore_cached_bytes = graph_store_->cached_bytes();
  info.graphstore_hits = graph_store_->hits();
  info.graphstore_misses = graph_store_->misses();
  info.graphstore_cow_clones = graph_store_->cow_clones();
  if (time_store_ != nullptr) {
    info.timestore_enabled = true;
    info.timestore_last_ts = time_store_->last_ts();
    info.timestore_num_updates = time_store_->num_updates();
    info.timestore_log_bytes = time_store_->LogBytes();
    info.timestore_snapshot_bytes = time_store_->SnapshotBytes();
    info.timestore_size_bytes = time_store_->SizeBytes();
  }
  if (lineage_store_ != nullptr) {
    info.lineage_enabled = true;
    info.lineage_applied_ts = cascade_applied_ts();
    info.lineage_num_records = lineage_store_->num_records();
    info.lineage_size_bytes = lineage_store_->SizeBytes();
  }
  info.metrics = metrics_->Snapshot();
  return info;
}

void AionStore::CountFallback() {
  // Only a configured-but-lagging LineageStore counts: with the store
  // disabled the TimeStore path is the plan, not a fallback.
  if (lineage_store_ != nullptr) metric_fallback_->Add();
}

// ---------------------------------------------------------------------------
// TimeStore fallbacks
// ---------------------------------------------------------------------------

namespace {

/// Folds an entity's update stream into versions overlapping [start, end).
/// The stream may be seeded: `seed_state`/`seed_live` is the entity's state
/// in the compaction-floor base snapshot at `base_ts`, and `updates` then
/// only covers (base_ts, ...]. An unseeded call passes base_ts 0 and
/// seed_live false (fold from the empty graph, the pre-compaction path).
template <typename Entity, typename Matches, typename Fold>
std::vector<graph::Versioned<Entity>> FoldUpdates(
    const std::vector<GraphUpdate>& updates, Timestamp start, Timestamp end,
    Timestamp base_ts, Entity seed_state, bool seed_live, Matches&& matches,
    Fold&& fold) {
  if (end <= start) end = start == graph::kInfiniteTime ? start : start + 1;
  std::vector<graph::Versioned<Entity>> out;
  Entity state = std::move(seed_state);
  bool live = seed_live;
  bool have_cur = false;
  graph::Versioned<Entity> cur;
  if (live) {
    // The base state is a version in force since (at least) base_ts; its
    // true start may predate the floor, which history no longer records.
    cur = {{base_ts, graph::kInfiniteTime}, state};
    have_cur = true;
  }
  for (const GraphUpdate& u : updates) {
    if (!matches(u)) continue;
    if (u.ts >= end) {
      if (have_cur) {
        cur.interval.end = u.ts;
        if (cur.interval.start < cur.interval.end &&
            cur.interval.Overlaps(start, end)) {
          out.push_back(cur);
        }
        have_cur = false;
      }
      break;
    }
    const bool was_live = live;
    fold(u, &state, &live);
    if (have_cur && u.ts == cur.interval.start) {
      if (!live) {
        have_cur = false;
      } else {
        cur.entity = state;
      }
      continue;
    }
    if (have_cur) {
      cur.interval.end = u.ts;
      if (cur.interval.start < cur.interval.end &&
          cur.interval.Overlaps(start, end)) {
        out.push_back(cur);
      }
      have_cur = false;
    }
    if (live) {
      cur = {{u.ts, graph::kInfiniteTime}, state};
      have_cur = true;
    }
    (void)was_live;
  }
  if (have_cur && cur.interval.Overlaps(start, end)) {
    cur.interval.end = graph::kInfiniteTime;
    out.push_back(cur);
  }
  return out;
}

}  // namespace

StatusOr<std::vector<NodeVersion>> AionStore::NodeHistoryViaTimeStore(
    graph::NodeId id, Timestamp start, Timestamp end) {
  const Timestamp scan_end =
      end <= start ? (start == graph::kInfiniteTime ? start : start + 1)
                   : end;
  // Base + (base_ts, scan_end]: the update at scan_end (= end) closes the
  // last version's interval inside FoldUpdates, so the inclusive upper
  // bound is deliberate. The bloom-key filter lets the scan skip whole
  // segments this node provably never touched; the surviving updates may
  // still include other entities (segment granularity) — `matches` drops
  // them.
  const std::vector<uint64_t> filter = {NodeBloomKey(id)};
  AION_ASSIGN_OR_RETURN(TimeStore::SeededUpdates seeded,
                        time_store_->SeededReplay(scan_end, &filter));
  graph::Node seed_state{};
  bool seed_live = false;
  if (seeded.base != nullptr) {
    if (const graph::Node* n = seeded.base->GetNode(id); n != nullptr) {
      seed_state = *n;
      seed_live = true;
    }
  }
  return FoldUpdates<graph::Node>(
      seeded.updates, start, end, seeded.base_ts, std::move(seed_state),
      seed_live,
      [id](const GraphUpdate& u) {
        return graph::IsNodeOp(u.op) && u.id == id;
      },
      [](const GraphUpdate& u, graph::Node* node, bool* live) {
        switch (u.op) {
          case UpdateOp::kAddNode:
            node->id = u.id;
            node->labels = u.labels;
            node->props = u.props;
            *live = true;
            break;
          case UpdateOp::kDeleteNode:
            *live = false;
            *node = graph::Node{};
            break;
          case UpdateOp::kSetNodeProperty:
            node->props.Set(u.key, u.value);
            break;
          case UpdateOp::kRemoveNodeProperty:
            node->props.Remove(u.key);
            break;
          case UpdateOp::kAddNodeLabel:
            node->AddLabel(u.label);
            break;
          case UpdateOp::kRemoveNodeLabel:
            node->RemoveLabel(u.label);
            break;
          default:
            break;
        }
      });
}

StatusOr<std::vector<RelationshipVersion>> AionStore::RelHistoryViaTimeStore(
    graph::RelId id, Timestamp start, Timestamp end) {
  const Timestamp scan_end =
      end <= start ? (start == graph::kInfiniteTime ? start : start + 1)
                   : end;
  const std::vector<uint64_t> filter = {RelBloomKey(id)};
  AION_ASSIGN_OR_RETURN(TimeStore::SeededUpdates seeded,
                        time_store_->SeededReplay(scan_end, &filter));
  graph::Relationship seed_state{};
  bool seed_live = false;
  if (seeded.base != nullptr) {
    if (const graph::Relationship* r = seeded.base->GetRelationship(id);
        r != nullptr) {
      seed_state = *r;
      seed_live = true;
    }
  }
  return FoldUpdates<graph::Relationship>(
      seeded.updates, start, end, seeded.base_ts, std::move(seed_state),
      seed_live,
      [id](const GraphUpdate& u) {
        return !graph::IsNodeOp(u.op) && u.id == id;
      },
      [](const GraphUpdate& u, graph::Relationship* rel, bool* live) {
        switch (u.op) {
          case UpdateOp::kAddRelationship:
            rel->id = u.id;
            rel->src = u.src;
            rel->tgt = u.tgt;
            rel->type = u.type;
            rel->props = u.props;
            *live = true;
            break;
          case UpdateOp::kDeleteRelationship:
            *live = false;
            *rel = graph::Relationship{};
            break;
          case UpdateOp::kSetRelationshipProperty:
            rel->props.Set(u.key, u.value);
            break;
          case UpdateOp::kRemoveRelationshipProperty:
            rel->props.Remove(u.key);
            break;
          default:
            break;
        }
      });
}

StatusOr<std::vector<std::vector<graph::Node>>> AionStore::ExpandViaTimeStore(
    graph::NodeId id, Direction direction, uint32_t hops, Timestamp t) {
  // Full snapshot materialization followed by traversal (Sec 4.3: "Point or
  // subgraph queries require the creation of a snapshot, ... an expensive
  // operation with graph retrieval outweighing traversal costs").
  AION_ASSIGN_OR_RETURN(auto view, time_store_->GetGraphAt(t));
  std::vector<std::vector<graph::Node>> result;
  std::vector<graph::NodeId> queue = {id};
  for (uint32_t hop = 1; hop <= hops; ++hop) {
    std::vector<graph::Node> level;
    std::map<graph::NodeId, bool> visited_this_hop;
    std::vector<graph::NodeId> next;
    for (graph::NodeId cid : queue) {
      // Row boundary of the GraphStore expansion loop: a killed statement
      // must not traverse the whole frontier to completion.
      if (obs::CancellationRequested()) {
        return Status::Cancelled("query killed");
      }
      view->ForEachRel(cid, direction, [&](graph::RelId rel_id) {
        const graph::Relationship* rel = view->GetRelationship(rel_id);
        if (rel == nullptr) return;
        const graph::NodeId nbr =
            direction == Direction::kOutgoing
                ? rel->tgt
                : (direction == Direction::kIncoming ? rel->src
                                                     : rel->Other(cid));
        if (!visited_this_hop.emplace(nbr, true).second) return;
        const graph::Node* node = view->GetNode(nbr);
        if (node != nullptr) {
          level.push_back(*node);
          next.push_back(nbr);
        }
      });
    }
    result.push_back(std::move(level));
    queue = std::move(next);
    if (queue.empty()) break;
  }
  result.resize(hops);
  return result;
}

}  // namespace aion::core
