#include "core/graphstore.h"

#include <algorithm>

namespace aion::core {

using graph::MemoryGraph;
using graph::Timestamp;

GraphStore::GraphStore(size_t capacity_bytes, obs::MetricsRegistry* metrics)
    : capacity_bytes_(capacity_bytes),
      latest_(std::make_shared<MemoryGraph>()) {
  if (metrics != nullptr) {
    metric_requests_ = metrics->counter("graphstore.requests");
    metric_hits_ = metrics->counter("graphstore.hits");
    metric_misses_ = metrics->counter("graphstore.misses");
    metric_cow_clones_ = metrics->counter("graphstore.cow_clones");
  }
}

util::Status GraphStore::ApplyToLatest(const graph::GraphUpdate& update) {
  std::lock_guard<std::mutex> lock(mu_);
  if (latest_.use_count() > 1) {
    // A published view is still alive somewhere: clone once so the holder
    // keeps its immutable snapshot (copy-on-write). Subsequent updates
    // mutate the fresh copy in place until the next handout escapes.
    latest_ = std::shared_ptr<MemoryGraph>(latest_->Clone());
    ++cow_clones_;
    if (metric_cow_clones_ != nullptr) metric_cow_clones_->Add();
  }
  AION_RETURN_IF_ERROR(latest_->Apply(update));
  latest_ts_ = std::max(latest_ts_, update.ts);
  return util::Status::OK();
}

void GraphStore::SeedLatest(std::unique_ptr<MemoryGraph> graph,
                            Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  latest_ = std::shared_ptr<MemoryGraph>(std::move(graph));
  latest_ts_ = ts;
}

std::shared_ptr<const MemoryGraph> GraphStore::Latest() {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

void GraphStore::Put(Timestamp ts,
                     std::shared_ptr<const MemoryGraph> snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.bytes = snapshot->EstimateMemoryBytes();
  entry.snapshot = std::move(snapshot);
  entry.last_used = ++use_clock_;
  auto it = snapshots_.find(ts);
  if (it != snapshots_.end()) {
    total_bytes_ -= it->second.bytes;
    it->second = std::move(entry);
    total_bytes_ += it->second.bytes;
  } else {
    total_bytes_ += entry.bytes;
    snapshots_.emplace(ts, std::move(entry));
  }
  EvictIfNeeded();
}

std::shared_ptr<const MemoryGraph> GraphStore::Get(Timestamp ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metric_requests_ != nullptr) metric_requests_->Add();
  auto it = snapshots_.find(ts);
  if (it == snapshots_.end()) {
    ++misses_;
    if (metric_misses_ != nullptr) metric_misses_->Add();
    return nullptr;
  }
  ++hits_;
  if (metric_hits_ != nullptr) metric_hits_->Add();
  it->second.last_used = ++use_clock_;
  return it->second.snapshot;
}

std::shared_ptr<const MemoryGraph> GraphStore::ClosestAtOrBefore(
    Timestamp t, Timestamp* snapshot_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metric_requests_ != nullptr) metric_requests_->Add();
  // Candidate from the snapshot cache: largest key <= t.
  auto it = snapshots_.upper_bound(t);
  std::shared_ptr<const MemoryGraph> best;
  Timestamp best_ts = 0;
  if (it != snapshots_.begin()) {
    --it;
    best = it->second.snapshot;
    best_ts = it->first;
  }
  // The latest replica also counts when it is old enough.
  if (latest_ts_ <= t && latest_ts_ >= best_ts) {
    *snapshot_ts = latest_ts_;
    ++hits_;
    if (metric_hits_ != nullptr) metric_hits_->Add();
    return latest_;
  }
  if (best != nullptr) {
    it->second.last_used = ++use_clock_;
    *snapshot_ts = best_ts;
    ++hits_;
    if (metric_hits_ != nullptr) metric_hits_->Add();
    return best;
  }
  ++misses_;
  if (metric_misses_ != nullptr) metric_misses_->Add();
  return nullptr;
}

size_t GraphStore::cached_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.size();
}

size_t GraphStore::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

void GraphStore::PutResult(const std::string& name,
                           std::vector<double> values) {
  std::lock_guard<std::mutex> lock(mu_);
  results_[name] = std::move(values);
}

std::optional<std::vector<double>> GraphStore::GetResult(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(name);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

void GraphStore::EvictIfNeeded() {
  while (total_bytes_ > capacity_bytes_ && snapshots_.size() > 1) {
    // Evict the least-recently-used snapshot.
    auto victim = snapshots_.begin();
    for (auto it = snapshots_.begin(); it != snapshots_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    total_bytes_ -= victim->second.bytes;
    snapshots_.erase(victim);
  }
}

}  // namespace aion::core
