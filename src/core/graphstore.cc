#include "core/graphstore.h"

#include "obs/query_stats.h"

#include <algorithm>

namespace aion::core {

using graph::MemoryGraph;
using graph::Timestamp;

GraphStore::GraphStore(size_t capacity_bytes, obs::MetricsRegistry* metrics,
                       size_t num_shards)
    : capacity_bytes_(capacity_bytes),
      latest_(std::make_shared<MemoryGraph>()) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (metrics != nullptr) {
    metric_requests_ = metrics->counter("graphstore.requests");
    metric_hits_ = metrics->counter("graphstore.hits");
    metric_misses_ = metrics->counter("graphstore.misses");
    metric_cow_clones_ = metrics->counter("graphstore.cow_clones");
    for (size_t i = 0; i < num_shards; ++i) {
      const std::string prefix = "graphstore.shard" + std::to_string(i);
      shards_[i]->metric_hits = metrics->counter(prefix + ".hits");
      shards_[i]->metric_misses = metrics->counter(prefix + ".misses");
    }
  }
}

GraphStore::Shard& GraphStore::ShardFor(Timestamp ts) {
  // Timestamps are near-sequential, so mix the bits (splitmix64 finalizer)
  // before reducing; adjacent snapshots land on different shards.
  uint64_t x = ts + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return *shards_[x % shards_.size()];
}

void GraphStore::CountHit(Shard* shard) {
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::TickGraphStoreHit();
  if (metric_hits_ != nullptr) metric_hits_->Add();
  if (shard != nullptr && shard->metric_hits != nullptr) {
    shard->metric_hits->Add();
  }
}

void GraphStore::CountMiss(Shard* shard) {
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::TickGraphStoreMiss();
  if (metric_misses_ != nullptr) metric_misses_->Add();
  if (shard != nullptr && shard->metric_misses != nullptr) {
    shard->metric_misses->Add();
  }
}

util::Status GraphStore::MutateLatest(
    Timestamp batch_ts,
    const std::function<util::Status(MemoryGraph*)>& fn) {
  std::unique_lock<std::shared_mutex> lock(latest_mu_);
  if (latest_.use_count() > 1) {
    // A published view is still alive somewhere: clone once so the holder
    // keeps its immutable snapshot (copy-on-write). Subsequent updates
    // mutate the fresh copy in place until the next handout escapes.
    latest_ = std::shared_ptr<MemoryGraph>(latest_->Clone());
    cow_clones_.fetch_add(1, std::memory_order_relaxed);
    if (metric_cow_clones_ != nullptr) metric_cow_clones_->Add();
  }
  AION_RETURN_IF_ERROR(fn(latest_.get()));
  Timestamp prev = latest_ts_.load(std::memory_order_relaxed);
  if (batch_ts > prev) latest_ts_.store(batch_ts, std::memory_order_release);
  return util::Status::OK();
}

util::Status GraphStore::ApplyToLatest(const graph::GraphUpdate& update) {
  return MutateLatest(update.ts, [&update](MemoryGraph* graph) {
    return graph->Apply(update);
  });
}

void GraphStore::SeedLatest(std::unique_ptr<MemoryGraph> graph,
                            Timestamp ts) {
  std::unique_lock<std::shared_mutex> lock(latest_mu_);
  latest_ = std::shared_ptr<MemoryGraph>(std::move(graph));
  latest_ts_.store(ts, std::memory_order_release);
}

std::shared_ptr<const MemoryGraph> GraphStore::Latest(Timestamp* ts) {
  std::shared_lock<std::shared_mutex> lock(latest_mu_);
  if (ts != nullptr) *ts = latest_ts_.load(std::memory_order_relaxed);
  return latest_;
}

void GraphStore::Put(Timestamp ts,
                     std::shared_ptr<const MemoryGraph> snapshot) {
  Shard& shard = ShardFor(ts);
  const size_t bytes = snapshot->EstimateMemoryBytes();
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto [it, inserted] = shard.snapshots.try_emplace(ts);
    if (inserted) {
      num_snapshots_.fetch_add(1, std::memory_order_relaxed);
    } else {
      total_bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    }
    it->second.snapshot = std::move(snapshot);
    it->second.bytes = bytes;
    it->second.last_used.store(Tick(), std::memory_order_relaxed);
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  EvictIfNeeded();
}

std::shared_ptr<const MemoryGraph> GraphStore::Get(Timestamp ts) {
  if (metric_requests_ != nullptr) metric_requests_->Add();
  Shard& shard = ShardFor(ts);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.snapshots.find(ts);
  if (it == shard.snapshots.end()) {
    CountMiss(&shard);
    return nullptr;
  }
  CountHit(&shard);
  it->second.last_used.store(Tick(), std::memory_order_relaxed);
  return it->second.snapshot;
}

std::shared_ptr<const MemoryGraph> GraphStore::ClosestAtOrBefore(
    Timestamp t, Timestamp* snapshot_ts) {
  if (metric_requests_ != nullptr) metric_requests_->Add();
  // Candidate from the snapshot cache: largest key <= t across every shard
  // (each shard visited under its own shared lock, never nested).
  std::shared_ptr<const MemoryGraph> best;
  Timestamp best_ts = 0;
  Shard* best_shard = nullptr;
  for (auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    auto it = shard->snapshots.upper_bound(t);
    if (it == shard->snapshots.begin()) continue;
    --it;
    if (best == nullptr || it->first >= best_ts) {
      best = it->second.snapshot;
      best_ts = it->first;
      best_shard = shard.get();
    }
  }
  // The latest replica also counts when it is old enough.
  {
    std::shared_lock<std::shared_mutex> lock(latest_mu_);
    const Timestamp latest_ts = latest_ts_.load(std::memory_order_relaxed);
    if (latest_ts <= t && (best == nullptr || latest_ts >= best_ts)) {
      *snapshot_ts = latest_ts;
      CountHit(nullptr);
      return latest_;
    }
  }
  if (best != nullptr) {
    // LRU touch on the winner (re-locked shared; the entry may have been
    // evicted meanwhile, in which case the handed-out pointer is still
    // valid and the touch is simply dropped).
    {
      std::shared_lock<std::shared_mutex> lock(best_shard->mu);
      auto it = best_shard->snapshots.find(best_ts);
      if (it != best_shard->snapshots.end()) {
        it->second.last_used.store(Tick(), std::memory_order_relaxed);
      }
    }
    *snapshot_ts = best_ts;
    CountHit(best_shard);
    return best;
  }
  CountMiss(nullptr);
  return nullptr;
}

void GraphStore::PutResult(const std::string& name,
                           std::vector<double> values) {
  std::lock_guard<std::mutex> lock(results_mu_);
  results_[name] = std::move(values);
}

std::optional<std::vector<double>> GraphStore::GetResult(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(results_mu_);
  auto it = results_.find(name);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

void GraphStore::EvictIfNeeded() {
  // One evictor at a time; victim search takes shard locks one by one, so
  // concurrent readers only ever wait on their own shard.
  std::lock_guard<std::mutex> evict_lock(evict_mu_);
  while (total_bytes_.load(std::memory_order_relaxed) > capacity_bytes_ &&
         num_snapshots_.load(std::memory_order_relaxed) > 1) {
    // Globally least-recently-used snapshot across all shards.
    Shard* victim_shard = nullptr;
    Timestamp victim_ts = 0;
    uint64_t victim_used = ~uint64_t{0};
    for (auto& shard : shards_) {
      std::shared_lock<std::shared_mutex> lock(shard->mu);
      for (const auto& [ts, entry] : shard->snapshots) {
        const uint64_t used = entry.last_used.load(std::memory_order_relaxed);
        if (used < victim_used) {
          victim_used = used;
          victim_ts = ts;
          victim_shard = shard.get();
        }
      }
    }
    if (victim_shard == nullptr) return;
    std::unique_lock<std::shared_mutex> lock(victim_shard->mu);
    auto it = victim_shard->snapshots.find(victim_ts);
    if (it == victim_shard->snapshots.end()) continue;  // raced with a Put
    total_bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    num_snapshots_.fetch_sub(1, std::memory_order_relaxed);
    victim_shard->snapshots.erase(it);
  }
}

}  // namespace aion::core
