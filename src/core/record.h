// Temporal record codec (Sec 4.2, Fig 3): variable-size records with two
// record types — fully materialized graph entities and deltas from the last
// update. The first byte (header) carries the entity type (node /
// relationship / neighbourhood) and state (deleted / delta). Strings (labels,
// relationship types, property keys, string property values) are replaced by
// 4-byte references into a string store; a reference's most significant bit
// marks label removal, and the three most significant bits of a property
// key reference carry its state (deleted) and the value's data type.
// Deleted entities require space only for their id and deletion timestamp.
#ifndef AION_CORE_RECORD_H_
#define AION_CORE_RECORD_H_

#include <string>
#include <vector>

#include "graph/entity.h"
#include "graph/types.h"
#include "graph/update.h"
#include "storage/string_pool.h"
#include "util/slice.h"
#include "util/status.h"

namespace aion::core {

using graph::EntityType;
using graph::NodeId;
using graph::RelId;
using graph::Timestamp;
using util::Status;
using util::StatusOr;

/// One label change inside a record: the label string and, for deltas,
/// whether it was added or removed.
struct LabelEntry {
  std::string label;
  bool removed = false;

  bool operator==(const LabelEntry&) const = default;
};

/// One property change inside a record.
struct PropEntry {
  std::string key;
  bool removed = false;
  graph::PropertyValue value;  // null when removed

  bool operator==(const PropEntry&) const = default;
};

/// A decoded temporal record. `delta == false` records carry the complete
/// entity state at `ts`; `delta == true` records carry only the changes
/// since the previous record of the same entity.
struct TemporalRecord {
  EntityType entity_type = EntityType::kNode;
  bool deleted = false;
  bool delta = false;
  uint64_t id = 0;
  Timestamp ts = 0;

  // Relationship / neighbourhood records only.
  NodeId src = graph::kInvalidNodeId;
  NodeId tgt = graph::kInvalidNodeId;
  std::string rel_type;

  // Node records: labels; relationship records: unused.
  std::vector<LabelEntry> labels;
  std::vector<PropEntry> props;

  bool operator==(const TemporalRecord&) const = default;
};

/// Encodes/decodes TemporalRecords against a string pool. Not thread-safe
/// beyond the pool's own guarantees.
class RecordCodec {
 public:
  explicit RecordCodec(storage::StringPool* pool) : pool_(pool) {}

  /// Serializes `record`, interning all strings.
  Status Encode(const TemporalRecord& record, std::string* dst) const;

  /// Parses one record from the front of `input`, resolving string refs.
  StatusOr<TemporalRecord> Decode(util::Slice* input) const;

  // -------------------------------------------------------------------
  // Record construction
  // -------------------------------------------------------------------

  /// Fully materialized node state at `ts`.
  static TemporalRecord FullNode(const graph::Node& node, Timestamp ts);

  /// Fully materialized relationship state at `ts`.
  static TemporalRecord FullRelationship(const graph::Relationship& rel,
                                         Timestamp ts);

  /// Tombstone: entity deleted at `ts` (id + timestamp only on disk).
  static TemporalRecord Tombstone(EntityType type, uint64_t id, Timestamp ts);

  /// Delta record from a property/label update (Sec 4.2 record type ii).
  /// Fails for structural ops (add/delete), which map to Full*/Tombstone.
  static StatusOr<TemporalRecord> DeltaFromUpdate(const graph::GraphUpdate& u);

  // -------------------------------------------------------------------
  // Reconstruction: fold a record onto an entity state
  // -------------------------------------------------------------------

  /// Applies `record` (full, delta, or tombstone) onto `*node`. For full
  /// records the node is replaced; for tombstones `*live` is set false.
  static Status FoldNode(const TemporalRecord& record, graph::Node* node,
                         bool* live);
  static Status FoldRelationship(const TemporalRecord& record,
                                 graph::Relationship* rel, bool* live);

 private:
  StatusOr<uint32_t> InternChecked(const std::string& s) const;

  storage::StringPool* pool_;
};

}  // namespace aion::core

#endif  // AION_CORE_RECORD_H_
