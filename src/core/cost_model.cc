#include "core/cost_model.h"

#include <algorithm>
#include <sstream>

namespace aion::core {

void OperatorCostModel::ObserveLineageExpand(uint64_t nanos, uint64_t nodes) {
  const double per_node =
      static_cast<double>(nanos) / static_cast<double>(std::max<uint64_t>(nodes, 1));
  std::lock_guard<std::mutex> lock(mu_);
  lineage_per_node_.Observe(per_node);
}

void OperatorCostModel::ObserveTimeStoreExpand(uint64_t nanos,
                                               uint64_t nodes) {
  const double per_node =
      static_cast<double>(nanos) / static_cast<double>(std::max<uint64_t>(nodes, 1));
  std::lock_guard<std::mutex> lock(mu_);
  timestore_per_node_.Observe(per_node);
}

void OperatorCostModel::ObserveSnapshotLoad(uint64_t nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_load_.Observe(static_cast<double>(nanos));
}

bool OperatorCostModel::confident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lineage_per_node_.samples >= kMinSamples &&
         timestore_per_node_.samples >= kMinSamples;
}

double OperatorCostModel::lineage_nanos_per_node() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lineage_per_node_.value;
}

double OperatorCostModel::timestore_nanos_per_node() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timestore_per_node_.value;
}

double OperatorCostModel::snapshot_load_nanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_load_.value;
}

uint64_t OperatorCostModel::lineage_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lineage_per_node_.samples;
}

uint64_t OperatorCostModel::timestore_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timestore_per_node_.samples;
}

double OperatorCostModel::EstimateLineageCost(double est_nodes) const {
  std::lock_guard<std::mutex> lock(mu_);
  return est_nodes * lineage_per_node_.value;
}

double OperatorCostModel::EstimateTimeStoreCost(double est_nodes) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The snapshot-load EWMA is a refinement on top of the measured
  // whole-route per-node cost: when the epoch fast path serves GetGraphAt
  // the load is nearly free and the per-node figure already reflects that,
  // so the fixed term only contributes once samples exist.
  return est_nodes * timestore_per_node_.value + snapshot_load_.value;
}

std::string OperatorCostModel::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"lineage_nanos_per_node\":" << lineage_per_node_.value
      << ",\"lineage_samples\":" << lineage_per_node_.samples
      << ",\"timestore_nanos_per_node\":" << timestore_per_node_.value
      << ",\"timestore_samples\":" << timestore_per_node_.samples
      << ",\"snapshot_load_nanos\":" << snapshot_load_.value
      << ",\"confident\":"
      << (lineage_per_node_.samples >= kMinSamples &&
                  timestore_per_node_.samples >= kMinSamples
              ? "true"
              : "false")
      << "}";
  return out.str();
}

}  // namespace aion::core
