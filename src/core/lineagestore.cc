#include "core/lineagestore.h"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <shared_mutex>

#include "obs/workload_registry.h"
#include "storage/file.h"
#include "util/coding.h"
#include "util/logging.h"

namespace aion::core {

using graph::GraphUpdate;
using graph::UpdateOp;
using storage::BpTree;
using util::DecodeBigEndian64;
using util::PutBigEndian64;
using util::Slice;

namespace {

constexpr uint64_t kMaxSeq = ~0ULL;
constexpr char kNbrAdded = 0;
constexpr char kNbrRemoved = 1;

std::string EntityKey(uint64_t id, Timestamp ts, uint64_t seq) {
  std::string key;
  PutBigEndian64(&key, id);
  PutBigEndian64(&key, ts);
  PutBigEndian64(&key, seq);
  return key;
}

std::string NbrKey(uint64_t a, uint64_t b, Timestamp ts, uint64_t rel) {
  std::string key;
  PutBigEndian64(&key, a);
  PutBigEndian64(&key, b);
  PutBigEndian64(&key, ts);
  PutBigEndian64(&key, rel);
  return key;
}

uint64_t KeyId(Slice key) { return DecodeBigEndian64(key.data()); }

}  // namespace

StatusOr<std::unique_ptr<LineageStore>> LineageStore::Open(
    const Options& options, storage::StringPool* pool) {
  AION_RETURN_IF_ERROR(storage::CreateDirIfMissing(options.dir));
  std::unique_ptr<LineageStore> store(new LineageStore());
  store->options_ = options;
  if (store->options_.materialization_threshold == 0) {
    store->options_.materialization_threshold = 1;
  }
  store->codec_ = std::make_unique<RecordCodec>(pool);
  if (options.metrics != nullptr) {
    store->metric_applies_ = options.metrics->counter("lineagestore.applies");
    store->metric_probe_nodes_ =
        options.metrics->counter("lineagestore.probes.nodes");
    store->metric_probe_rels_ =
        options.metrics->counter("lineagestore.probes.rels");
    store->metric_probe_out_ =
        options.metrics->counter("lineagestore.probes.out_nbrs");
    store->metric_probe_in_ =
        options.metrics->counter("lineagestore.probes.in_nbrs");
  }
  BpTree::Options tree_options;
  tree_options.cache_pages = options.index_cache_pages;
  tree_options.metrics = options.metrics;
  AION_ASSIGN_OR_RETURN(
      store->nodes_, BpTree::Open(options.dir + "/nodes.bpt", tree_options));
  AION_ASSIGN_OR_RETURN(
      store->rels_, BpTree::Open(options.dir + "/rels.bpt", tree_options));
  AION_ASSIGN_OR_RETURN(
      store->out_, BpTree::Open(options.dir + "/out_nbrs.bpt", tree_options));
  AION_ASSIGN_OR_RETURN(
      store->in_, BpTree::Open(options.dir + "/in_nbrs.bpt", tree_options));
  // Watermark + sequence meta (16 bytes, overwritten on Flush).
  const std::string meta_path = options.dir + "/meta";
  if (storage::FileExists(meta_path)) {
    AION_ASSIGN_OR_RETURN(auto meta, storage::RandomAccessFile::Open(meta_path));
    if (meta->size() >= 16) {
      char buf[16];
      AION_RETURN_IF_ERROR(meta->Read(0, 16, buf));
      store->seq_ = util::DecodeFixed64(buf);
      store->applied_ts_.store(util::DecodeFixed64(buf + 8));
    }
  }
  return store;
}

Status LineageStore::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  AION_RETURN_IF_ERROR(nodes_->Flush());
  AION_RETURN_IF_ERROR(rels_->Flush());
  AION_RETURN_IF_ERROR(out_->Flush());
  AION_RETURN_IF_ERROR(in_->Flush());
  AION_ASSIGN_OR_RETURN(auto meta,
                        storage::RandomAccessFile::Open(options_.dir + "/meta"));
  char buf[16];
  util::EncodeFixed64(buf, seq_);
  util::EncodeFixed64(buf + 8, applied_ts_.load());
  return meta->Write(0, buf, 16);
}

void LineageStore::CountProbe(const BpTree* tree) const {
  obs::Counter* counter = nullptr;
  if (tree == nodes_.get()) {
    counter = metric_probe_nodes_;
  } else if (tree == rels_.get()) {
    counter = metric_probe_rels_;
  } else if (tree == out_.get()) {
    counter = metric_probe_out_;
  } else if (tree == in_.get()) {
    counter = metric_probe_in_;
  }
  if (counter != nullptr) counter->Add();
}

uint64_t LineageStore::SizeBytes() const {
  return nodes_->SizeBytes() + rels_->SizeBytes() + out_->SizeBytes() +
         in_->SizeBytes();
}

Status LineageStore::PutRecord(BpTree* tree, const TemporalRecord& record) {
  util::PooledBuffer value(&buffers_);
  AION_RETURN_IF_ERROR(codec_->Encode(record, value.get()));
  return tree->Put(EntityKey(record.id, record.ts, seq_++), *value);
}

StatusOr<uint32_t> LineageStore::CountChain(BpTree* tree,
                                            uint64_t id) const {
  uint32_t count = 0;
  Status decode_status = Status::OK();
  AION_RETURN_IF_ERROR(tree->ScanBackward(
      EntityKey(id, graph::kInfiniteTime, kMaxSeq),
      [&](Slice key, Slice value) {
        if (KeyId(key) == id && count < options_.materialization_threshold) {
          auto rec = codec_->Decode(&value);
          if (!rec.ok()) {
            decode_status = rec.status();
            return false;
          }
          if (!rec->delta) return false;
          ++count;
          return true;
        }
        return false;
      }));
  AION_RETURN_IF_ERROR(decode_status);
  return count;
}

template <typename Entity>
Status LineageStore::ReconstructAt(BpTree* tree, uint64_t id, Timestamp t,
                                   Entity* entity, bool* live,
                                   Timestamp* version_start) const {
  *live = false;
  *version_start = 0;
  CountProbe(tree);
  std::vector<TemporalRecord> chain;  // newest first
  Status decode_status = Status::OK();
  AION_RETURN_IF_ERROR(tree->ScanBackward(
      EntityKey(id, t, kMaxSeq), [&](Slice key, Slice value) {
        if (KeyId(key) != id) return false;
        auto rec = codec_->Decode(&value);
        if (!rec.ok()) {
          decode_status = rec.status();
          return false;
        }
        const bool is_base = !rec->delta;
        chain.push_back(std::move(*rec));
        return !is_base;  // stop at the last full record / tombstone
      }));
  AION_RETURN_IF_ERROR(decode_status);
  if (chain.empty()) return Status::OK();  // never existed at or before t
  if (chain.back().delta) {
    return Status::Corruption("delta chain without a base record for id " +
                              std::to_string(id));
  }
  *version_start = chain.front().ts;
  for (auto rec = chain.rbegin(); rec != chain.rend(); ++rec) {
    if constexpr (std::is_same_v<Entity, graph::Node>) {
      AION_RETURN_IF_ERROR(RecordCodec::FoldNode(*rec, entity, live));
    } else {
      AION_RETURN_IF_ERROR(RecordCodec::FoldRelationship(*rec, entity, live));
    }
  }
  return Status::OK();
}

template <typename Entity>
StatusOr<std::vector<graph::Versioned<Entity>>> LineageStore::History(
    BpTree* tree, uint64_t id, Timestamp start, Timestamp end) const {
  // Normalize a point query [t, t] to the window [t, t+1).
  if (end <= start) {
    end = start == graph::kInfiniteTime ? start : start + 1;
  }
  std::vector<graph::Versioned<Entity>> out;

  Entity state{};
  bool live = false;
  Timestamp vstart = 0;
  AION_RETURN_IF_ERROR(
      ReconstructAt(tree, id, start, &state, &live, &vstart));

  bool have_cur = live;
  graph::Versioned<Entity> cur{{vstart, graph::kInfiniteTime}, state};

  auto emit = [&](Timestamp version_end) {
    cur.interval.end = version_end;
    if (cur.interval.start < cur.interval.end &&
        cur.interval.Overlaps(start, end)) {
      out.push_back(cur);
    }
  };

  std::vector<TemporalRecord> records;
  Status decode_status = Status::OK();
  bool saw_past_end = false;
  CountProbe(tree);
  AION_RETURN_IF_ERROR(tree->ScanForward(
      EntityKey(id, start, kMaxSeq), [&](Slice key, Slice value) {
        if (KeyId(key) != id) return false;
        auto rec = codec_->Decode(&value);
        if (!rec.ok()) {
          decode_status = rec.status();
          return false;
        }
        const bool past_end = rec->ts >= end;
        records.push_back(std::move(*rec));
        if (past_end) {
          saw_past_end = true;
          return false;  // one record past the window closes the version
        }
        return true;
      }));
  AION_RETURN_IF_ERROR(decode_status);
  (void)saw_past_end;
  for (TemporalRecord& rec : records) {
    if (rec.ts >= end) {
      // The record past the window closes the open version with its true
      // end time.
      if (have_cur) {
        emit(rec.ts);
        have_cur = false;
      }
      break;
    }
    if (have_cur && rec.ts == cur.interval.start) {
      // Same-timestamp change (multiple updates in one transaction, or a
      // replayed batch): collapse into the current version.
      if (rec.deleted) {
        have_cur = false;
        live = false;
      } else {
        bool live2 = true;
        if constexpr (std::is_same_v<Entity, graph::Node>) {
          AION_RETURN_IF_ERROR(RecordCodec::FoldNode(rec, &cur.entity, &live2));
        } else {
          AION_RETURN_IF_ERROR(
              RecordCodec::FoldRelationship(rec, &cur.entity, &live2));
        }
        state = cur.entity;
      }
      continue;
    }
    if (have_cur) emit(rec.ts);
    if (rec.deleted) {
      live = false;
      have_cur = false;
      continue;
    }
    if constexpr (std::is_same_v<Entity, graph::Node>) {
      AION_RETURN_IF_ERROR(RecordCodec::FoldNode(rec, &state, &live));
    } else {
      AION_RETURN_IF_ERROR(RecordCodec::FoldRelationship(rec, &state, &live));
    }
    cur = {{rec.ts, graph::kInfiniteTime}, state};
    have_cur = true;
  }
  if (have_cur) emit(graph::kInfiniteTime);
  return out;
}

StatusOr<std::vector<NodeVersion>> LineageStore::GetNode(
    graph::NodeId id, Timestamp start, Timestamp end) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return History<graph::Node>(nodes_.get(), id, start, end);
}

StatusOr<std::vector<RelationshipVersion>> LineageStore::GetRelationship(
    graph::RelId id, Timestamp start, Timestamp end) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return History<graph::Relationship>(rels_.get(), id, start, end);
}

StatusOr<std::vector<RelationshipVersion>>
LineageStore::GetRelationshipUnlocked(graph::RelId id, Timestamp start,
                                      Timestamp end) const {
  return History<graph::Relationship>(rels_.get(), id, start, end);
}

StatusOr<std::optional<graph::Node>> LineageStore::GetNodeAt(
    graph::NodeId id, Timestamp t) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetNodeAtUnlocked(id, t);
}

StatusOr<std::optional<graph::Node>> LineageStore::GetNodeAtUnlocked(
    graph::NodeId id, Timestamp t) const {
  graph::Node node;
  bool live = false;
  Timestamp vstart;
  AION_RETURN_IF_ERROR(
      ReconstructAt(nodes_.get(), id, t, &node, &live, &vstart));
  if (!live) return std::optional<graph::Node>();
  return std::optional<graph::Node>(std::move(node));
}

StatusOr<std::optional<graph::Relationship>> LineageStore::GetRelationshipAt(
    graph::RelId id, Timestamp t) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetRelationshipAtUnlocked(id, t);
}

StatusOr<std::optional<graph::Relationship>>
LineageStore::GetRelationshipAtUnlocked(graph::RelId id, Timestamp t) const {
  graph::Relationship rel;
  bool live = false;
  Timestamp vstart;
  AION_RETURN_IF_ERROR(
      ReconstructAt(rels_.get(), id, t, &rel, &live, &vstart));
  if (!live) return std::optional<graph::Relationship>();
  return std::optional<graph::Relationship>(std::move(rel));
}

StatusOr<std::vector<std::vector<RelationshipVersion>>>
LineageStore::GetRelationships(graph::NodeId node, Direction direction,
                               Timestamp start, Timestamp end) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (end <= start) {
    end = start == graph::kInfiniteTime ? start : start + 1;
  }
  // Scan adjacency events and find relationships whose adjacency interval
  // overlaps the window.
  struct RelEvents {
    std::vector<std::pair<Timestamp, bool>> events;  // (ts, removed)
  };
  std::map<graph::RelId, RelEvents> by_rel;
  std::vector<graph::RelId> order;

  auto scan = [&](BpTree* tree) -> Status {
    CountProbe(tree);
    return tree->ScanForward(
        NbrKey(node, 0, 0, 0), [&](Slice key, Slice value) {
          if (KeyId(key) != node) return false;
          const Timestamp ts = DecodeBigEndian64(key.data() + 16);
          const graph::RelId rel = DecodeBigEndian64(key.data() + 24);
          const bool removed = !value.empty() && value[0] == kNbrRemoved;
          auto ins = by_rel.emplace(rel, RelEvents{});
          if (ins.second) order.push_back(rel);
          ins.first->second.events.emplace_back(ts, removed);
          return true;
        });
  };
  if (direction == Direction::kOutgoing || direction == Direction::kBoth) {
    AION_RETURN_IF_ERROR(scan(out_.get()));
  }
  if (direction == Direction::kIncoming || direction == Direction::kBoth) {
    AION_RETURN_IF_ERROR(scan(in_.get()));
  }

  std::vector<std::vector<RelationshipVersion>> result;
  for (graph::RelId rel : order) {
    auto& info = by_rel[rel];
    std::sort(info.events.begin(), info.events.end());
    // Adjacency intervals: [add, remove) pairs; open tail = infinity.
    bool overlaps = false;
    Timestamp open_start = 0;
    bool open = false;
    for (const auto& [ts, removed] : info.events) {
      if (!removed) {
        open = true;
        open_start = ts;
      } else if (open) {
        if (graph::TimeInterval{open_start, ts}.Overlaps(start, end)) {
          overlaps = true;
        }
        open = false;
      }
    }
    if (open &&
        graph::TimeInterval{open_start, graph::kInfiniteTime}.Overlaps(start,
                                                                       end)) {
      overlaps = true;
    }
    if (!overlaps) continue;
    AION_ASSIGN_OR_RETURN(std::vector<RelationshipVersion> history,
                          GetRelationshipUnlocked(rel, start, end));
    if (!history.empty()) result.push_back(std::move(history));
  }
  return result;
}

StatusOr<std::vector<LineageStore::LiveNeighbour>>
LineageStore::GetLiveNeighbours(graph::NodeId node, Direction direction,
                                Timestamp t) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetLiveNeighboursUnlocked(node, direction, t);
}

StatusOr<std::vector<LineageStore::LiveNeighbour>>
LineageStore::GetLiveNeighboursUnlocked(graph::NodeId node,
                                        Direction direction,
                                        Timestamp t) const {
  // For each incident relationship, the last adjacency event at or before t
  // decides liveness; the neighbour id comes straight from the key.
  struct LastEvent {
    Timestamp ts = 0;
    bool removed = true;
    graph::NodeId neighbour = graph::kInvalidNodeId;
  };
  std::map<graph::RelId, LastEvent> last;
  std::vector<graph::RelId> order;

  auto scan = [&](BpTree* tree) -> Status {
    CountProbe(tree);
    return tree->ScanForward(
        NbrKey(node, 0, 0, 0), [&](Slice key, Slice value) {
          if (KeyId(key) != node) return false;
          const Timestamp ts = DecodeBigEndian64(key.data() + 16);
          if (ts > t) return true;  // grouped by neighbour, not time
          const graph::NodeId nbr = DecodeBigEndian64(key.data() + 8);
          const graph::RelId rel = DecodeBigEndian64(key.data() + 24);
          const bool removed = !value.empty() && value[0] == kNbrRemoved;
          auto ins = last.emplace(rel, LastEvent{});
          if (ins.second) order.push_back(rel);
          LastEvent& e = ins.first->second;
          if (ts >= e.ts) {
            e.ts = ts;
            e.removed = removed;
            e.neighbour = nbr;
          }
          return true;
        });
  };
  if (direction == Direction::kOutgoing || direction == Direction::kBoth) {
    AION_RETURN_IF_ERROR(scan(out_.get()));
  }
  if (direction == Direction::kIncoming || direction == Direction::kBoth) {
    AION_RETURN_IF_ERROR(scan(in_.get()));
  }

  std::vector<LiveNeighbour> result;
  result.reserve(order.size());
  for (graph::RelId rel : order) {
    const LastEvent& e = last[rel];
    if (!e.removed) result.push_back({rel, e.neighbour});
  }
  return result;
}

StatusOr<std::vector<std::vector<graph::Node>>> LineageStore::Expand(
    graph::NodeId id, Direction direction, uint32_t hops,
    Timestamp t) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Alg 1: per-hop visited set S; the frontier queue Q carries repeats
  // across hops (nodes reachable via multiple paths are re-expanded, which
  // is exactly the behaviour Sec 6.3 measures for large hop counts).
  std::vector<std::vector<graph::Node>> result;
  std::deque<graph::NodeId> queue;
  queue.push_back(id);
  for (uint32_t hop = 1; hop <= hops; ++hop) {
    std::vector<graph::Node> level;
    std::map<graph::NodeId, bool> visited_this_hop;
    const size_t qsize = queue.size();
    for (size_t i = 0; i < qsize; ++i) {
      // Row boundary of the expansion loop: the frontier grows roughly
      // degree^hop, so a killed statement must bail per item, not per hop.
      if (obs::CancellationRequested()) {
        return Status::Cancelled("query killed");
      }
      const graph::NodeId cid = queue.front();
      queue.pop_front();
      AION_ASSIGN_OR_RETURN(std::vector<LiveNeighbour> nbrs,
                            GetLiveNeighboursUnlocked(cid, direction, t));
      for (const LiveNeighbour& nbr : nbrs) {
        auto [it, fresh] = visited_this_hop.emplace(nbr.neighbour, true);
        if (!fresh) continue;
        AION_ASSIGN_OR_RETURN(std::optional<graph::Node> node,
                              GetNodeAtUnlocked(nbr.neighbour, t));
        if (node.has_value()) {
          level.push_back(std::move(*node));
          queue.push_back(nbr.neighbour);
        }
      }
    }
    result.push_back(std::move(level));
    if (queue.empty()) break;
  }
  result.resize(hops);
  return result;
}

Status LineageStore::ApplyEntityChange(
    BpTree* tree, std::unordered_map<uint64_t, uint32_t>* chains,
    const GraphUpdate& u) {
  AION_ASSIGN_OR_RETURN(TemporalRecord delta, RecordCodec::DeltaFromUpdate(u));
  auto chain_it = chains->find(u.id);
  uint32_t chain;
  if (chain_it == chains->end()) {
    AION_ASSIGN_OR_RETURN(chain, CountChain(tree, u.id));
  } else {
    chain = chain_it->second;
  }
  if (chain + 1 >= options_.materialization_threshold) {
    // Materialize: reconstruct the current state, fold the new change, and
    // write a full record (Sec 6.5).
    if (tree == nodes_.get()) {
      graph::Node node;
      bool live = false;
      Timestamp vstart;
      AION_RETURN_IF_ERROR(
          ReconstructAt(tree, u.id, u.ts, &node, &live, &vstart));
      if (!live) {
        return Status::FailedPrecondition("update to dead node " +
                                          std::to_string(u.id));
      }
      AION_RETURN_IF_ERROR(RecordCodec::FoldNode(delta, &node, &live));
      AION_RETURN_IF_ERROR(
          PutRecord(tree, RecordCodec::FullNode(node, u.ts)));
    } else {
      graph::Relationship rel;
      bool live = false;
      Timestamp vstart;
      AION_RETURN_IF_ERROR(
          ReconstructAt(tree, u.id, u.ts, &rel, &live, &vstart));
      if (!live) {
        return Status::FailedPrecondition("update to dead relationship " +
                                          std::to_string(u.id));
      }
      AION_RETURN_IF_ERROR(RecordCodec::FoldRelationship(delta, &rel, &live));
      AION_RETURN_IF_ERROR(
          PutRecord(tree, RecordCodec::FullRelationship(rel, u.ts)));
    }
    (*chains)[u.id] = 0;
  } else {
    AION_RETURN_IF_ERROR(PutRecord(tree, delta));
    (*chains)[u.id] = chain + 1;
  }
  return Status::OK();
}

Status LineageStore::Apply(const GraphUpdate& u) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return ApplyUnlocked(u);
}

Status LineageStore::ApplyUnlocked(const GraphUpdate& u) {
  switch (u.op) {
    case UpdateOp::kAddNode: {
      graph::Node node;
      node.id = u.id;
      node.labels = u.labels;
      node.props = u.props;
      AION_RETURN_IF_ERROR(
          PutRecord(nodes_.get(), RecordCodec::FullNode(node, u.ts)));
      node_chains_[u.id] = 0;
      break;
    }
    case UpdateOp::kDeleteNode: {
      AION_RETURN_IF_ERROR(PutRecord(
          nodes_.get(),
          RecordCodec::Tombstone(graph::EntityType::kNode, u.id, u.ts)));
      node_chains_[u.id] = 0;
      break;
    }
    case UpdateOp::kAddRelationship: {
      graph::Relationship rel;
      rel.id = u.id;
      rel.src = u.src;
      rel.tgt = u.tgt;
      rel.type = u.type;
      rel.props = u.props;
      AION_RETURN_IF_ERROR(
          PutRecord(rels_.get(), RecordCodec::FullRelationship(rel, u.ts)));
      rel_chains_[u.id] = 0;
      const char added = kNbrAdded;
      AION_RETURN_IF_ERROR(out_->Put(NbrKey(u.src, u.tgt, u.ts, u.id),
                                     Slice(&added, 1)));
      AION_RETURN_IF_ERROR(
          in_->Put(NbrKey(u.tgt, u.src, u.ts, u.id), Slice(&added, 1)));
      break;
    }
    case UpdateOp::kDeleteRelationship: {
      graph::NodeId src = u.src;
      graph::NodeId tgt = u.tgt;
      if (src == graph::kInvalidNodeId || tgt == graph::kInvalidNodeId) {
        // Endpoints not provided: reconstruct the latest version.
        AION_ASSIGN_OR_RETURN(std::optional<graph::Relationship> rel,
                              GetRelationshipAtUnlocked(u.id, u.ts));
        if (!rel.has_value()) {
          return Status::FailedPrecondition(
              "deleting unknown relationship " + std::to_string(u.id));
        }
        src = rel->src;
        tgt = rel->tgt;
      }
      AION_RETURN_IF_ERROR(
          PutRecord(rels_.get(), RecordCodec::Tombstone(
                                     graph::EntityType::kRelationship, u.id,
                                     u.ts)));
      rel_chains_[u.id] = 0;
      const char removed = kNbrRemoved;
      AION_RETURN_IF_ERROR(
          out_->Put(NbrKey(src, tgt, u.ts, u.id), Slice(&removed, 1)));
      AION_RETURN_IF_ERROR(
          in_->Put(NbrKey(tgt, src, u.ts, u.id), Slice(&removed, 1)));
      break;
    }
    case UpdateOp::kSetNodeProperty:
    case UpdateOp::kRemoveNodeProperty:
    case UpdateOp::kAddNodeLabel:
    case UpdateOp::kRemoveNodeLabel:
      AION_RETURN_IF_ERROR(
          ApplyEntityChange(nodes_.get(), &node_chains_, u));
      break;
    case UpdateOp::kSetRelationshipProperty:
    case UpdateOp::kRemoveRelationshipProperty:
      AION_RETURN_IF_ERROR(ApplyEntityChange(rels_.get(), &rel_chains_, u));
      break;
  }
  if (u.ts > applied_ts_.load()) applied_ts_.store(u.ts);
  if (metric_applies_ != nullptr) metric_applies_->Add();
  return Status::OK();
}

StatusOr<LineageStore::ChainCompaction> LineageStore::CompactChains(
    uint32_t max_chain, size_t max_rewrites) {
  ChainCompaction result;
  if (max_chain == 0) return result;
  std::unique_lock<std::shared_mutex> lock(mu_);

  // One pass per tree: fold each entity's records forward in key order,
  // counting the consecutive-delta run; when the run reaches max_chain,
  // plan replacing that delta with the full state it folds to. Rewrites
  // are applied after the scan (the iterator must not observe writes).
  struct Plan {
    std::string key;
    std::string value;
    uint64_t id;
  };
  auto compact_tree = [&](BpTree* tree,
                          std::unordered_map<uint64_t, uint32_t>* chains,
                          bool is_node) -> Status {
    std::vector<Plan> plans;
    uint64_t cur_id = ~0ull;
    graph::Node node;
    graph::Relationship rel;
    bool live = false;
    bool skip_id = false;  // no usable base state: never rewrite this id
    uint32_t run = 0;
    Status inner = Status::OK();
    AION_RETURN_IF_ERROR(tree->ScanForward(
        EntityKey(0, 0, 0), [&](Slice key, Slice value) {
          if (max_rewrites != 0 &&
              result.records_rewritten + plans.size() >= max_rewrites) {
            return false;
          }
          ++result.records_scanned;
          const uint64_t id = KeyId(key);
          if (id != cur_id) {
            cur_id = id;
            live = false;
            skip_id = false;
            run = 0;
          }
          auto rec = codec_->Decode(&value);
          if (!rec.ok()) {
            inner = rec.status();
            return false;
          }
          if (rec->deleted) {
            live = false;
            run = 0;
            return true;
          }
          if (!rec->delta) {
            // Full record: replaces the state, resets the chain.
            bool l = true;
            if (is_node) {
              node = graph::Node{};
              inner = RecordCodec::FoldNode(*rec, &node, &l);
            } else {
              rel = graph::Relationship{};
              inner = RecordCodec::FoldRelationship(*rec, &rel, &l);
            }
            if (!inner.ok()) return false;
            live = true;
            skip_id = false;
            run = 0;
            return true;
          }
          if (!live || skip_id) {
            // Delta without a reachable base (shouldn't happen in a healthy
            // store): leave the id untouched rather than guess.
            skip_id = true;
            return true;
          }
          bool l = live;
          if (is_node) {
            inner = RecordCodec::FoldNode(*rec, &node, &l);
          } else {
            inner = RecordCodec::FoldRelationship(*rec, &rel, &l);
          }
          if (!inner.ok()) return false;
          live = l;
          if (++run >= max_chain) {
            const TemporalRecord full =
                is_node ? RecordCodec::FullNode(node, rec->ts)
                        : RecordCodec::FullRelationship(rel, rec->ts);
            Plan p;
            p.key = key.ToString();
            p.id = id;
            inner = codec_->Encode(full, &p.value);
            if (!inner.ok()) return false;
            plans.push_back(std::move(p));
            run = 0;
          }
          return true;
        }));
    AION_RETURN_IF_ERROR(inner);
    for (const Plan& p : plans) {
      AION_RETURN_IF_ERROR(tree->Put(p.key, p.value));
      // The id's delta-since-full count changed; recount lazily on the
      // next write to it.
      chains->erase(p.id);
      ++result.records_rewritten;
    }
    return Status::OK();
  };
  AION_RETURN_IF_ERROR(compact_tree(nodes_.get(), &node_chains_, true));
  AION_RETURN_IF_ERROR(compact_tree(rels_.get(), &rel_chains_, false));
  return result;
}

Status LineageStore::ApplyAll(const std::vector<GraphUpdate>& updates) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const GraphUpdate& u : updates) {
    AION_RETURN_IF_ERROR(ApplyUnlocked(u));
  }
  return Status::OK();
}

}  // namespace aion::core
