// Bitemporal support (Sec 3 / 4.5): application (event) time is stored as
// two ordinary graph properties — application start and end time — managed
// by the user. Queries filter by application time *after* a system-time
// valid (sub)graph has been retrieved; when the properties are absent, the
// system-time interval is used as a fallback.
#ifndef AION_CORE_BITEMPORAL_H_
#define AION_CORE_BITEMPORAL_H_

#include <string>
#include <vector>

#include "graph/entity.h"
#include "graph/types.h"

namespace aion::core {

/// Property keys holding the user-managed application validity interval.
inline constexpr const char* kApplicationStartKey = "app_start";
inline constexpr const char* kApplicationEndKey = "app_end";

/// Extracts the application-time interval of an entity's property set,
/// falling back to `system_interval` when either bound is absent (Sec 4.5:
/// "If the application time is not set as a property, we fall back to using
/// the system time").
inline graph::TimeInterval ApplicationInterval(
    const graph::PropertySet& props, graph::TimeInterval system_interval) {
  graph::TimeInterval out = system_interval;
  if (const graph::PropertyValue* start = props.Get(kApplicationStartKey);
      start != nullptr && start->type() == graph::PropertyType::kInt) {
    out.start = static_cast<graph::Timestamp>(start->AsInt());
  }
  if (const graph::PropertyValue* end = props.Get(kApplicationEndKey);
      end != nullptr && end->type() == graph::PropertyType::kInt) {
    out.end = static_cast<graph::Timestamp>(end->AsInt());
  }
  return out;
}

/// CONTAINED IN (lo, hi): the application interval lies within [lo, hi].
inline bool ApplicationTimeContainedIn(const graph::PropertySet& props,
                                       graph::TimeInterval system_interval,
                                       graph::Timestamp lo,
                                       graph::Timestamp hi) {
  const graph::TimeInterval app = ApplicationInterval(props, system_interval);
  return app.start >= lo && app.end <= hi;
}

/// Filters versioned entities by application-time containment.
template <typename Entity>
std::vector<graph::Versioned<Entity>> FilterByApplicationTime(
    std::vector<graph::Versioned<Entity>> versions, graph::Timestamp lo,
    graph::Timestamp hi) {
  std::vector<graph::Versioned<Entity>> out;
  out.reserve(versions.size());
  for (auto& v : versions) {
    if (ApplicationTimeContainedIn(v.entity.props, v.interval, lo, hi)) {
      out.push_back(std::move(v));
    }
  }
  return out;
}

}  // namespace aion::core

#endif  // AION_CORE_BITEMPORAL_H_
