// TimeStore (Sec 4.3): snapshot-based temporal storage indexing graph
// updates by time. Components:
//  * an append-only log of all graph changes, ordered by monotonically
//    increasing transaction timestamps, split across rolling segment files
//    (storage::SegmentedLog) so retention can drop whole cold segments;
//  * a B+Tree indexing log entries by (timestamp, sequence) ->
//    (segment, offset), giving O(log n) time-based lookups and range scans
//    (Table 2 row 1);
//  * eagerly created snapshots on disk under a user-defined policy
//    (operation-based by default), indexed by a second B+Tree
//    timestamp -> snapshot file (Table 2 row 2);
//  * the GraphStore LRU cache to avoid snapshot I/O where possible.
//
// Retrieval at time t: fetch the closest snapshot at or before t (GraphStore
// first, then disk) and replay the forward changes from the log (Copy+Log).
//
// Retention (this file's lifecycle half): CompactUpTo(floor) materializes a
// snapshot at exactly `floor`, then atomically drops every sealed segment
// whose records all lie strictly below `floor` — the snapshot subsumes
// them. Each sealed segment carries fence keys (min/max record timestamp)
// and a bloom filter over the entity keys it touches, so temporal scans
// skip segments that provably hold nothing of interest. GcSnapshots applies
// a keep-vs-reconstruct cost model (Khurana-style): a snapshot whose
// reconstruction from its predecessor needs only a few log records is
// cheaper to rebuild on demand than to keep on disk.
//
// Concurrency: single-writer / multi-reader behind a std::shared_mutex.
// Append / WriteSnapshot / Flush take the latch exclusively; scans and
// snapshot-index lookups take it shared, so concurrent GetGraphAt / GetDiff
// calls proceed in parallel (the B+Trees' page caches latch internally).
// Scans resolve their segment handles while still holding the shared latch,
// which pins the underlying files: compaction may drop and unlink a segment
// concurrently, but an in-flight scan keeps reading its pinned handle (the
// fd outlives the unlink). The records themselves are immutable once
// indexed and are read — and decoded, in parallel across
// Options::replay_pool for large ranges — with no latch held at all, so a
// long replay never delays the ingest path.
#ifndef AION_CORE_TIMESTORE_H_
#define AION_CORE_TIMESTORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/graphstore.h"
#include "core/write_batch.h"
#include "graph/cow_graph.h"
#include "graph/graph_view.h"
#include "graph/memgraph.h"
#include "graph/update.h"
#include "obs/metrics.h"
#include "storage/bptree.h"
#include "storage/segmented_log.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace aion::core {

using graph::GraphUpdate;
using graph::Timestamp;
using util::Status;
using util::StatusOr;

/// When to eagerly materialize snapshots (Sec 4.3: "time-based or
/// operation-based, with the default being operation-based").
struct SnapshotPolicy {
  enum class Kind { kOperationBased, kTimeBased, kDisabled };
  Kind kind = Kind::kOperationBased;
  /// kOperationBased: snapshot every N updates; kTimeBased: every N ticks.
  uint64_t every = 100000;
};

/// Entity keys for the per-segment bloom filters. Node and relationship id
/// spaces overlap, so tag the low bit to keep them distinct.
inline uint64_t NodeBloomKey(uint64_t id) { return id << 1; }
inline uint64_t RelBloomKey(uint64_t id) { return (id << 1) | 1; }

/// Appends the bloom keys of every entity `updates` touches: the update's
/// own node/relationship id, plus endpoint node ids for relationship adds.
void CollectBloomKeys(const std::vector<GraphUpdate>& updates,
                      std::vector<uint64_t>* keys);

class TimeStore {
 public:
  /// Test-only crash injection for the compaction path: return early at a
  /// chosen point, simulating a crash between the two halves of the atomic
  /// swap. Recovery at the next Open must converge to the same state.
  enum class CompactionCrashPoint {
    kNone,
    /// After the floor snapshot is written and indexed, before the manifest
    /// swap: nothing was dropped, the floor did not advance.
    kAfterSnapshotWrite,
    /// After the manifest swap, before the (ts, seq) index deletions and
    /// file unlinks: the index holds dangling entries and orphan segment
    /// files remain on disk until reopen cleans them.
    kAfterManifestSwap,
  };

  struct Options {
    std::string dir;
    SnapshotPolicy policy;
    size_t index_cache_pages = 512;
    /// Seal a log segment once it reaches this many bytes; sealed segments
    /// are the unit of retention-driven compaction.
    uint64_t target_segment_bytes = 8ull << 20;
    /// Per-segment bloom filter size; 0 = auto (~10 bits per distinct key).
    uint64_t bloom_bits = 0;
    CompactionCrashPoint crash_point = CompactionCrashPoint::kNone;
    /// Optional registry for the "timestore.*" instruments (and the page
    /// caches of the two indexes). Must outlive the TimeStore.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional worker pool for parallel log decode during replay. Not
    /// owned; must outlive the TimeStore. nullptr = always sequential.
    util::ThreadPool* replay_pool = nullptr;
    /// Minimum number of log records in a scan before the decode is
    /// partitioned across replay_pool (below it, sequential is faster).
    size_t parallel_replay_threshold = 32;
  };

  /// Opens (creating if missing) a TimeStore rooted at options.dir.
  /// `graph_store` provides the snapshot cache and latest replica; it is
  /// shared with the owning AionStore and must outlive the TimeStore.
  static StatusOr<std::unique_ptr<TimeStore>> Open(const Options& options,
                                                   GraphStore* graph_store);

  TimeStore(const TimeStore&) = delete;
  TimeStore& operator=(const TimeStore&) = delete;

  // -------------------------------------------------------------------
  // Ingestion (synchronous on the commit path, Sec 5.1 stage 2)
  // -------------------------------------------------------------------

  /// Appends one committed transaction's updates (all stamped `ts`) as a
  /// single log record and indexes it by time. Also signals whether the
  /// snapshot policy asks for a new snapshot.
  Status Append(Timestamp ts, const std::vector<GraphUpdate>& updates,
                bool* snapshot_due);

  /// Bulk form of Append: every transaction group keeps its own log record
  /// and (ts, seq) index entry, but the whole batch costs one log write and
  /// one sorted B+Tree batch-load. Group timestamps must be nondecreasing
  /// and >= last_ts().
  Status AppendBatch(const std::vector<WriteBatch::TxnGroup>& groups,
                     bool* snapshot_due);

  /// Writes `graph` to disk as the snapshot at `ts` and indexes it.
  Status WriteSnapshot(Timestamp ts, const graph::MemoryGraph& graph);

  // -------------------------------------------------------------------
  // Retention / compaction lifecycle
  // -------------------------------------------------------------------

  struct CompactionResult {
    uint64_t segments_dropped = 0;
    uint64_t records_dropped = 0;
    uint64_t bytes_reclaimed = 0;
    uint64_t snapshots_dropped = 0;
    /// The physical compaction floor after the call.
    Timestamp floor_ts = 0;
  };

  /// Merges every cold sealed segment (all records strictly below `floor`)
  /// into a materialized snapshot at exactly `floor`, then atomically drops
  /// the segments and their (ts, seq) index entries. The swap is crash-safe:
  /// the snapshot is durable before the manifest commit, and a crash at any
  /// point leaves either the old segment set or the new one, never a mix
  /// (reopen reaps dangling index entries and orphan files). In-flight
  /// scans keep their pinned segment handles. No-op when `floor` is 0 or
  /// does not advance the current physical floor.
  Status CompactUpTo(Timestamp floor, CompactionResult* result);

  /// Garbage-collects snapshots the keep-vs-reconstruct cost model marks as
  /// cheaper to rebuild: a snapshot is dropped when replaying forward from
  /// its predecessor costs at most `keep_replay_records` log records.
  /// Snapshots below the compaction floor are always dropped (they can no
  /// longer serve as replay bases), while the snapshot at exactly the floor
  /// and the newest snapshot are always kept. No-op when
  /// `keep_replay_records` is 0 and the floor is 0.
  Status GcSnapshots(uint64_t keep_replay_records, CompactionResult* result);

  /// Seals the active segment if every record in it is strictly below
  /// `floor`, making a cold tail eligible for the next compaction round.
  Status SealColdActive(Timestamp floor);

  /// Physical compaction floor: all records with ts < floor are gone.
  Timestamp compaction_floor() const { return segments_->floor_ts(); }

  uint64_t NumSegments() const { return segments_->NumSegments(); }
  uint64_t NumSnapshots() const;

  /// Lifetime compaction totals (for RetentionStats).
  uint64_t total_segments_dropped() const {
    return total_segments_dropped_.load(std::memory_order_relaxed);
  }
  uint64_t total_records_dropped() const {
    return total_records_dropped_.load(std::memory_order_relaxed);
  }
  uint64_t total_bytes_reclaimed() const {
    return total_bytes_reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t total_snapshots_dropped() const {
    return total_snapshots_dropped_.load(std::memory_order_relaxed);
  }

  // -------------------------------------------------------------------
  // Retrieval
  // -------------------------------------------------------------------

  /// All updates with start <= ts < end in timestamp order (Table 1
  /// getDiff). Half-open [start, end), matching every other interval in the
  /// temporal API (see core/aion.h "Interval convention").
  StatusOr<std::vector<GraphUpdate>> GetDiff(Timestamp start,
                                             Timestamp end) const;

  /// Snapshot-replay primitive: all updates with base_ts < ts <= t, i.e.
  /// applying the result onto the graph *at* `base_ts` yields the graph at
  /// `t`. This is the closed-open complement GetGraphAt/MaterializeGraphAt
  /// and the fine-grained fallbacks fold forward from a base state; public
  /// API users want GetDiff.
  StatusOr<std::vector<GraphUpdate>> ReplayRange(Timestamp base_ts,
                                                 Timestamp t) const;

  /// A replay that survives compaction: the base graph at `base_ts` (the
  /// floor snapshot when records below the floor were dropped, otherwise
  /// the empty graph at 0) plus the updates in (base_ts, t]. Single-entity
  /// folds pass their bloom keys as `entity_filter` so whole segments can
  /// be skipped; the updates may then include records for other entities
  /// (segment granularity), which the caller's fold ignores.
  struct SeededUpdates {
    Timestamp base_ts = 0;
    /// nullptr = empty graph at ts 0 (nothing compacted yet).
    std::shared_ptr<const graph::MemoryGraph> base;
    std::vector<GraphUpdate> updates;
  };
  StatusOr<SeededUpdates> SeededReplay(
      Timestamp t, const std::vector<uint64_t>* entity_filter);

  /// The graph as of time t (Copy+Log): closest snapshot + forward replay.
  /// Returns a CoW view when replay was needed, or the cached snapshot
  /// itself when it matched exactly.
  StatusOr<std::shared_ptr<const graph::GraphView>> GetGraphAt(Timestamp t);

  /// As GetGraphAt but always materializes an independent MemoryGraph
  /// (snapshot insertion into GraphStore, window queries).
  StatusOr<std::unique_ptr<graph::MemoryGraph>> MaterializeGraphAt(
      Timestamp t);

  /// Largest update timestamp appended so far.
  Timestamp last_ts() const {
    return last_ts_.load(std::memory_order_acquire);
  }

  /// Updates appended since the last snapshot (policy bookkeeping).
  uint64_t ops_since_snapshot() const {
    return ops_since_snapshot_.load(std::memory_order_relaxed);
  }

  /// Total updates appended.
  uint64_t num_updates() const {
    return num_updates_.load(std::memory_order_relaxed);
  }

  /// On-disk footprint: log segments + indexes + snapshot files.
  uint64_t SizeBytes() const;
  uint64_t LogBytes() const { return segments_->SizeBytes(); }
  uint64_t SnapshotBytes() const {
    return snapshot_bytes_.load(std::memory_order_relaxed);
  }

  Status Flush();

 private:
  TimeStore() = default;

  /// Drops index entries and snapshot files left dangling by a crash
  /// mid-compaction, then recovers last_ts_/seq_ from the index tail.
  Status RecoverIndexes();

  /// Finds the best base snapshot at or before t. Prefers the GraphStore;
  /// falls back to disk. Returns nullptr when none exists (base = empty
  /// graph at ts 0). Never returns a base below the compaction floor: the
  /// floor snapshot always exists once anything was compacted, and the
  /// in-memory cache only wins when at least as fresh as the disk pick.
  StatusOr<std::shared_ptr<const graph::MemoryGraph>> FindBase(
      Timestamp t, Timestamp* base_ts);

  /// Loads (and caches in the GraphStore) the snapshot at exactly `ts`.
  StatusOr<std::shared_ptr<const graph::MemoryGraph>> LoadSnapshotAt(
      Timestamp ts);

  StatusOr<std::shared_ptr<const graph::MemoryGraph>> LoadSnapshotFile(
      const std::string& path) const;

  /// Log scan over the inclusive timestamp range [first_ts, last_ts]:
  /// record locations are collected from the time index — and their
  /// segment handles pinned, with fence/bloom pruning against
  /// `entity_filter` — under the shared latch, then the records are read
  /// and decoded latch-free — partitioned across Options::replay_pool when
  /// the range is large, with the partitions concatenated in index order
  /// (a deterministic merge: the result is byte-identical to the
  /// sequential scan).
  StatusOr<std::vector<GraphUpdate>> ScanUpdates(
      Timestamp first_ts, Timestamp last_ts,
      const std::vector<uint64_t>* entity_filter = nullptr) const;

  Options options_;
  GraphStore* graph_store_ = nullptr;
  std::unique_ptr<storage::SegmentedLog> segments_;
  std::unique_ptr<storage::BpTree> time_index_;  // (ts, seq) -> (seg, off)
  std::unique_ptr<storage::BpTree> snapshot_index_;  // ts -> file path
  // Single-writer/multi-reader latch: exclusive for appends and index
  // structure changes, shared for index scans.
  mutable std::shared_mutex mu_;
  // Serializes compaction rounds against each other (they interleave
  // shared- and exclusive-latch phases, so mu_ alone is not enough).
  std::mutex compact_mu_;
  std::atomic<Timestamp> last_ts_{0};
  Timestamp last_snapshot_ts_ = 0;  // writer-only (exclusive latch)
  uint64_t seq_ = 0;                // writer-only (exclusive latch)
  std::atomic<uint64_t> num_updates_{0};
  std::atomic<uint64_t> ops_since_snapshot_{0};
  std::atomic<uint64_t> snapshot_bytes_{0};
  uint64_t snapshot_counter_ = 0;  // writer-only (exclusive latch)
  // Lifetime compaction totals.
  std::atomic<uint64_t> total_segments_dropped_{0};
  std::atomic<uint64_t> total_records_dropped_{0};
  std::atomic<uint64_t> total_bytes_reclaimed_{0};
  std::atomic<uint64_t> total_snapshots_dropped_{0};
  // Parallel-replay accounting (mutable: scans are const).
  mutable std::atomic<uint64_t> records_scanned_{0};
  mutable std::atomic<uint64_t> records_scanned_parallel_{0};
  // Observability (nullptr when Options::metrics was not given).
  obs::Counter* metric_appends_ = nullptr;
  obs::Counter* metric_batch_appends_ = nullptr;
  obs::Counter* metric_snapshots_written_ = nullptr;
  obs::Counter* metric_snapshots_due_ = nullptr;
  obs::Counter* metric_replayed_updates_ = nullptr;
  obs::Counter* metric_parallel_scans_ = nullptr;
  obs::Counter* metric_segments_skipped_ = nullptr;
  obs::Gauge* gauge_parallel_permille_ = nullptr;
  obs::Histogram* metric_snapshot_build_ = nullptr;
  obs::Histogram* metric_replay_ = nullptr;
};

}  // namespace aion::core

#endif  // AION_CORE_TIMESTORE_H_
