// TimeStore (Sec 4.3): snapshot-based temporal storage indexing graph
// updates by time. Components:
//  * a single append-only log of all graph changes, ordered by monotonically
//    increasing transaction timestamps (a WAL with no retention policy);
//  * a B+Tree indexing log entries by (timestamp, sequence) -> log offset,
//    giving O(log n) time-based lookups and range scans (Table 2 row 1);
//  * eagerly created snapshots on disk under a user-defined policy
//    (operation-based by default), indexed by a second B+Tree
//    timestamp -> snapshot file (Table 2 row 2);
//  * the GraphStore LRU cache to avoid snapshot I/O where possible.
//
// Retrieval at time t: fetch the closest snapshot at or before t (GraphStore
// first, then disk) and replay the forward changes from the log (Copy+Log).
//
// Concurrency: single-writer / multi-reader behind a std::shared_mutex.
// Append / WriteSnapshot / Flush take the latch exclusively; scans and
// snapshot-index lookups take it shared, so concurrent GetGraphAt / GetDiff
// calls proceed in parallel (the B+Trees' page caches latch internally).
// Scans only hold the shared latch while walking the time index; the log
// records themselves are immutable once indexed and are read — and decoded,
// in parallel across Options::replay_pool for large ranges — with no latch
// held at all, so a long replay never delays the ingest path.
#ifndef AION_CORE_TIMESTORE_H_
#define AION_CORE_TIMESTORE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/graphstore.h"
#include "core/write_batch.h"
#include "graph/cow_graph.h"
#include "graph/graph_view.h"
#include "graph/memgraph.h"
#include "graph/update.h"
#include "obs/metrics.h"
#include "storage/bptree.h"
#include "storage/log_file.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace aion::core {

using graph::GraphUpdate;
using graph::Timestamp;
using util::Status;
using util::StatusOr;

/// When to eagerly materialize snapshots (Sec 4.3: "time-based or
/// operation-based, with the default being operation-based").
struct SnapshotPolicy {
  enum class Kind { kOperationBased, kTimeBased, kDisabled };
  Kind kind = Kind::kOperationBased;
  /// kOperationBased: snapshot every N updates; kTimeBased: every N ticks.
  uint64_t every = 100000;
};

class TimeStore {
 public:
  struct Options {
    std::string dir;
    SnapshotPolicy policy;
    size_t index_cache_pages = 512;
    /// Optional registry for the "timestore.*" instruments (and the page
    /// caches of the two indexes). Must outlive the TimeStore.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional worker pool for parallel log decode during replay. Not
    /// owned; must outlive the TimeStore. nullptr = always sequential.
    util::ThreadPool* replay_pool = nullptr;
    /// Minimum number of log records in a scan before the decode is
    /// partitioned across replay_pool (below it, sequential is faster).
    size_t parallel_replay_threshold = 32;
  };

  /// Opens (creating if missing) a TimeStore rooted at options.dir.
  /// `graph_store` provides the snapshot cache and latest replica; it is
  /// shared with the owning AionStore and must outlive the TimeStore.
  static StatusOr<std::unique_ptr<TimeStore>> Open(const Options& options,
                                                   GraphStore* graph_store);

  TimeStore(const TimeStore&) = delete;
  TimeStore& operator=(const TimeStore&) = delete;

  // -------------------------------------------------------------------
  // Ingestion (synchronous on the commit path, Sec 5.1 stage 2)
  // -------------------------------------------------------------------

  /// Appends one committed transaction's updates (all stamped `ts`) as a
  /// single log record and indexes it by time. Also signals whether the
  /// snapshot policy asks for a new snapshot.
  Status Append(Timestamp ts, const std::vector<GraphUpdate>& updates,
                bool* snapshot_due);

  /// Bulk form of Append: every transaction group keeps its own log record
  /// and (ts, seq) index entry, but the whole batch costs one log write and
  /// one sorted B+Tree batch-load. Group timestamps must be nondecreasing
  /// and >= last_ts().
  Status AppendBatch(const std::vector<WriteBatch::TxnGroup>& groups,
                     bool* snapshot_due);

  /// Writes `graph` to disk as the snapshot at `ts` and indexes it.
  Status WriteSnapshot(Timestamp ts, const graph::MemoryGraph& graph);

  // -------------------------------------------------------------------
  // Retrieval
  // -------------------------------------------------------------------

  /// All updates with start <= ts < end in timestamp order (Table 1
  /// getDiff). Half-open [start, end), matching every other interval in the
  /// temporal API (see core/aion.h "Interval convention").
  StatusOr<std::vector<GraphUpdate>> GetDiff(Timestamp start,
                                             Timestamp end) const;

  /// Snapshot-replay primitive: all updates with base_ts < ts <= t, i.e.
  /// applying the result onto the graph *at* `base_ts` yields the graph at
  /// `t`. This is the closed-open complement GetGraphAt/MaterializeGraphAt
  /// and the fine-grained fallbacks fold forward from a base state; public
  /// API users want GetDiff.
  StatusOr<std::vector<GraphUpdate>> ReplayRange(Timestamp base_ts,
                                                 Timestamp t) const;

  /// The graph as of time t (Copy+Log): closest snapshot + forward replay.
  /// Returns a CoW view when replay was needed, or the cached snapshot
  /// itself when it matched exactly.
  StatusOr<std::shared_ptr<const graph::GraphView>> GetGraphAt(Timestamp t);

  /// As GetGraphAt but always materializes an independent MemoryGraph
  /// (snapshot insertion into GraphStore, window queries).
  StatusOr<std::unique_ptr<graph::MemoryGraph>> MaterializeGraphAt(
      Timestamp t);

  /// Largest update timestamp appended so far.
  Timestamp last_ts() const {
    return last_ts_.load(std::memory_order_acquire);
  }

  /// Updates appended since the last snapshot (policy bookkeeping).
  uint64_t ops_since_snapshot() const {
    return ops_since_snapshot_.load(std::memory_order_relaxed);
  }

  /// Total updates appended.
  uint64_t num_updates() const {
    return num_updates_.load(std::memory_order_relaxed);
  }

  /// On-disk footprint: log + indexes + snapshot files.
  uint64_t SizeBytes() const;
  uint64_t LogBytes() const { return log_->SizeBytes(); }
  uint64_t SnapshotBytes() const {
    return snapshot_bytes_.load(std::memory_order_relaxed);
  }

  Status Flush();

 private:
  TimeStore() = default;

  /// Finds the best base snapshot at or before t. Prefers the GraphStore;
  /// falls back to disk. Returns nullptr when none exists (base = empty
  /// graph at ts 0).
  StatusOr<std::shared_ptr<const graph::MemoryGraph>> FindBase(
      Timestamp t, Timestamp* base_ts);

  StatusOr<std::shared_ptr<const graph::MemoryGraph>> LoadSnapshotFile(
      const std::string& path) const;

  /// Log scan over the inclusive timestamp range [first_ts, last_ts]:
  /// offsets are collected from the time index under the shared latch, then
  /// the records are read and decoded latch-free — partitioned across
  /// Options::replay_pool when the range is large, with the partitions
  /// concatenated in index order (a deterministic merge: the result is
  /// byte-identical to the sequential scan).
  StatusOr<std::vector<GraphUpdate>> ScanUpdates(Timestamp first_ts,
                                                 Timestamp last_ts) const;

  Options options_;
  GraphStore* graph_store_ = nullptr;
  std::unique_ptr<storage::LogFile> log_;
  std::unique_ptr<storage::BpTree> time_index_;      // (ts, seq) -> offset
  std::unique_ptr<storage::BpTree> snapshot_index_;  // ts -> file path
  // Single-writer/multi-reader latch: exclusive for appends and index
  // structure changes, shared for index scans.
  mutable std::shared_mutex mu_;
  std::atomic<Timestamp> last_ts_{0};
  Timestamp last_snapshot_ts_ = 0;  // writer-only (exclusive latch)
  uint64_t seq_ = 0;                // writer-only (exclusive latch)
  std::atomic<uint64_t> num_updates_{0};
  std::atomic<uint64_t> ops_since_snapshot_{0};
  std::atomic<uint64_t> snapshot_bytes_{0};
  uint64_t snapshot_counter_ = 0;  // writer-only (exclusive latch)
  // Parallel-replay accounting (mutable: scans are const).
  mutable std::atomic<uint64_t> records_scanned_{0};
  mutable std::atomic<uint64_t> records_scanned_parallel_{0};
  // Observability (nullptr when Options::metrics was not given).
  obs::Counter* metric_appends_ = nullptr;
  obs::Counter* metric_batch_appends_ = nullptr;
  obs::Counter* metric_snapshots_written_ = nullptr;
  obs::Counter* metric_snapshots_due_ = nullptr;
  obs::Counter* metric_replayed_updates_ = nullptr;
  obs::Counter* metric_parallel_scans_ = nullptr;
  obs::Gauge* gauge_parallel_permille_ = nullptr;
  obs::Histogram* metric_snapshot_build_ = nullptr;
  obs::Histogram* metric_replay_ = nullptr;
};

}  // namespace aion::core

#endif  // AION_CORE_TIMESTORE_H_
