// Pinned-snapshot CSR projection cache (ISSUE 10): repeated analytics over
// the same epoch-pinned snapshot skip re-materializing the CSR projection.
// Entries are keyed by (snapshot timestamp, pattern signature) — the
// signature encodes everything that changes the projection's shape (today:
// the weight property; an empty signature is the unweighted structural
// projection). Eviction is LRU under a byte budget accounted with
// CsrGraph::SizeBytes, and compaction calls EvictBelow with the retention
// floor so projections of dropped history cannot outlive the data they
// were built from.
//
// Concurrency: lookups and inserts take one mutex; builds run OUTSIDE the
// lock, so a slow projection never blocks hits on other keys. Two threads
// missing the same key concurrently both build — the second insert is
// dropped in favour of the first (both callers get a valid projection and
// the budget is charged once).
#ifndef AION_CORE_CSR_CACHE_H_
#define AION_CORE_CSR_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "graph/csr.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace aion::core {

class CsrCache {
 public:
  struct Options {
    /// Byte budget across all cached projections. 0 disables caching
    /// entirely (every GetOrBuild builds and nothing is retained).
    size_t capacity_bytes = 256u << 20;
  };

  /// Instruments (all nullable): exec.csr_cache_hits / _misses / _builds /
  /// _evictions counters and the exec.csr_cache_bytes gauge.
  struct Instruments {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* builds = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* bytes = nullptr;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };

  using Builder = std::function<
      util::StatusOr<std::shared_ptr<const graph::CsrGraph>>()>;

  CsrCache(const Options& options, const Instruments& instruments);

  CsrCache(const CsrCache&) = delete;
  CsrCache& operator=(const CsrCache&) = delete;

  /// The projection for (ts, signature): cached (LRU touch) or built via
  /// `builder` outside the lock, then inserted (evicting LRU entries over
  /// budget). Builder failures are returned verbatim and cache nothing.
  util::StatusOr<std::shared_ptr<const graph::CsrGraph>> GetOrBuild(
      graph::Timestamp ts, const std::string& signature,
      const Builder& builder);

  /// Drops every projection with ts < floor (compaction: history below the
  /// physical floor is gone; its projections must not serve hits). Returns
  /// how many entries were dropped.
  size_t EvictBelow(graph::Timestamp floor);

  void Clear();

  Stats GetStats() const;

 private:
  using Key = std::pair<graph::Timestamp, std::string>;

  struct Entry {
    std::shared_ptr<const graph::CsrGraph> csr;
    size_t bytes = 0;
    std::list<Key>::iterator lru_it;  // position in lru_ (front = hottest)
  };

  /// Evicts least-recently-used entries until bytes_ <= capacity. Caller
  /// holds mu_.
  void EvictOverBudgetLocked();
  void RemoveLocked(std::map<Key, Entry>::iterator it);

  const Options options_;
  const Instruments instruments_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recently used
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace aion::core

#endif  // AION_CORE_CSR_CACHE_H_
