// LineageStore (Sec 4.4): fine-grained temporal storage indexing updates by
// entity identifier. Four B+Tree indexes (Table 2):
//   nodes           (nodeId, ts, seq)        -> node record
//   relationships   (relId, ts, seq)         -> relationship record
//   out-neighbours  (srcId, tgtId, ts, relId) -> added/removed flag
//   in-neighbours   (tgtId, srcId, ts, relId) -> added/removed flag
// Keys are composite and ordered first by entity id, then by timestamp, so
// an entity's history lives in the same or adjacent B+Tree pages and is
// retrieved with O(log n) + O(range) range scans.
//
// Updates are stored in place as deltas or fully materialized entities
// (Sec 4.2). A materialization threshold bounds delta chains: every
// `materialization_threshold`-th change to an entity is written as a full
// record, trading storage for reconstruction cost (Sec 6.5; default 4).
//
// Thread-safe: an internal shared_mutex makes writers (the single-threaded
// background cascade or the synchronous commit path) exclusive against
// concurrent readers; readers share.
#ifndef AION_CORE_LINEAGESTORE_H_
#define AION_CORE_LINEAGESTORE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/record.h"
#include "graph/entity.h"
#include "graph/update.h"
#include "obs/metrics.h"
#include "storage/bptree.h"
#include "storage/string_pool.h"
#include "util/object_pool.h"
#include "util/status.h"

namespace aion::core {

using graph::Direction;
using graph::NodeVersion;
using graph::RelationshipVersion;

class LineageStore {
 public:
  struct Options {
    std::string dir;
    /// Write a fully materialized record every N changes to an entity
    /// (1 = always materialize, >= chain length = deltas only). Sec 6.5
    /// finds 4 the sweet spot for the DBLP workload.
    uint32_t materialization_threshold = 4;
    size_t index_cache_pages = 512;
    /// Optional registry for the "lineagestore.*" instruments (applies and
    /// per-index B+Tree probe counts) and the four page caches. Must
    /// outlive the LineageStore.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Opens (creating if missing) a LineageStore rooted at options.dir.
  /// `pool` is the shared string store; must outlive the LineageStore.
  static StatusOr<std::unique_ptr<LineageStore>> Open(
      const Options& options, storage::StringPool* pool);

  LineageStore(const LineageStore&) = delete;
  LineageStore& operator=(const LineageStore&) = delete;

  // -------------------------------------------------------------------
  // Ingestion (applied by Aion's background workers, Sec 5.1)
  // -------------------------------------------------------------------

  /// Applies one update. For kDeleteRelationship the update's src/tgt must
  /// be populated (the transaction layer fills them) or the endpoints are
  /// reconstructed from the relationship index.
  Status Apply(const graph::GraphUpdate& update);
  Status ApplyAll(const std::vector<graph::GraphUpdate>& updates);

  // -------------------------------------------------------------------
  // Point queries (Table 1)
  // -------------------------------------------------------------------

  /// Node history: all versions overlapping [start, end), with start == end
  /// meaning the single state at that instant. Empty result = not present.
  StatusOr<std::vector<NodeVersion>> GetNode(graph::NodeId id,
                                             Timestamp start,
                                             Timestamp end) const;
  StatusOr<std::vector<RelationshipVersion>> GetRelationship(
      graph::RelId id, Timestamp start, Timestamp end) const;

  /// History of all relationships incident to `node` whose adjacency
  /// overlaps the window; one inner vector per relationship (Table 1
  /// List<List<Rel>>).
  StatusOr<std::vector<std::vector<RelationshipVersion>>> GetRelationships(
      graph::NodeId node, Direction direction, Timestamp start,
      Timestamp end) const;

  /// Relationship ids incident to `node` and alive at time `t`, with their
  /// neighbour node id on the other side (adjacency-only fast path used by
  /// the expand algorithm; avoids reconstructing relationship records).
  struct LiveNeighbour {
    graph::RelId rel;
    graph::NodeId neighbour;
  };
  StatusOr<std::vector<LiveNeighbour>> GetLiveNeighbours(
      graph::NodeId node, Direction direction, Timestamp t) const;

  // -------------------------------------------------------------------
  // Subgraph queries: Alg 1 (expand)
  // -------------------------------------------------------------------

  /// n-hop expansion from `id` at time `t`; result[h] holds the nodes first
  /// reached at hop h+1 (Alg 1).
  StatusOr<std::vector<std::vector<graph::Node>>> Expand(graph::NodeId id,
                                                         Direction direction,
                                                         uint32_t hops,
                                                         Timestamp t) const;

  /// Single-state conveniences.
  StatusOr<std::optional<graph::Node>> GetNodeAt(graph::NodeId id,
                                                 Timestamp t) const;
  StatusOr<std::optional<graph::Relationship>> GetRelationshipAt(
      graph::RelId id, Timestamp t) const;

  // -------------------------------------------------------------------
  // Lifecycle maintenance
  // -------------------------------------------------------------------

  struct ChainCompaction {
    uint64_t records_scanned = 0;
    uint64_t records_rewritten = 0;
  };

  /// Rewrites over-long delta chains in place: scanning the node and
  /// relationship indexes in key order, every `max_chain`-th consecutive
  /// delta record is replaced — same key, same timestamp — by the fully
  /// materialized state it folds to. Query results are byte-identical
  /// (the full record equals the fold of the chain it subsumes);
  /// reconstruction walks just get shorter. At most `max_rewrites`
  /// records are rewritten per call (0 = unlimited) to bound the
  /// exclusive-latch hold. No-op when `max_chain` is 0.
  StatusOr<ChainCompaction> CompactChains(uint32_t max_chain,
                                          size_t max_rewrites);

  /// Highest update timestamp applied (the cascade watermark). Read by
  /// query threads concurrently with the background cascade.
  Timestamp applied_ts() const { return applied_ts_.load(); }

  uint64_t SizeBytes() const;
  uint64_t num_records() const {
    return nodes_->num_entries() + rels_->num_entries();
  }

  Status Flush();

 private:
  LineageStore() = default;

  /// Reconstructs entity state at `t` by walking backwards to the last full
  /// record and folding forward. `version_start` receives the timestamp of
  /// the newest record <= t; `records_read` counts fold steps (tests).
  template <typename Entity>
  Status ReconstructAt(storage::BpTree* tree, uint64_t id, Timestamp t,
                       Entity* entity, bool* live,
                       Timestamp* version_start) const;

  /// Counts deltas since the last full record (chain length bookkeeping
  /// rebuild after reopen).
  StatusOr<uint32_t> CountChain(storage::BpTree* tree, uint64_t id) const;

  template <typename Entity>
  StatusOr<std::vector<graph::Versioned<Entity>>> History(
      storage::BpTree* tree, uint64_t id, Timestamp start,
      Timestamp end) const;

  Status PutRecord(storage::BpTree* tree, const TemporalRecord& record);
  Status ApplyEntityChange(storage::BpTree* tree,
                           std::unordered_map<uint64_t, uint32_t>* chains,
                           const graph::GraphUpdate& u);

  util::Status ApplyUnlocked(const graph::GraphUpdate& update);
  StatusOr<std::optional<graph::Node>> GetNodeAtUnlocked(graph::NodeId id,
                                                         Timestamp t) const;
  StatusOr<std::optional<graph::Relationship>> GetRelationshipAtUnlocked(
      graph::RelId id, Timestamp t) const;
  StatusOr<std::vector<LiveNeighbour>> GetLiveNeighboursUnlocked(
      graph::NodeId node, Direction direction, Timestamp t) const;
  StatusOr<std::vector<RelationshipVersion>> GetRelationshipUnlocked(
      graph::RelId id, Timestamp start, Timestamp end) const;

  mutable std::shared_mutex mu_;
  Options options_;
  std::unique_ptr<RecordCodec> codec_;
  std::unique_ptr<storage::BpTree> nodes_;
  std::unique_ptr<storage::BpTree> rels_;
  std::unique_ptr<storage::BpTree> out_;
  std::unique_ptr<storage::BpTree> in_;
  std::unordered_map<uint64_t, uint32_t> node_chains_;  // deltas since full
  std::unordered_map<uint64_t, uint32_t> rel_chains_;
  // Recycled encode buffers (Sec 5.3: statically allocated object pools on
  // the critical path). Writers are exclusive, so one pool suffices.
  util::BufferPool buffers_;
  uint64_t seq_ = 0;
  std::atomic<Timestamp> applied_ts_{0};

  /// One read descent into `tree` ("lineagestore.probes.<index>").
  void CountProbe(const storage::BpTree* tree) const;

  // Observability (nullptr when Options::metrics was not given).
  obs::Counter* metric_applies_ = nullptr;
  obs::Counter* metric_probe_nodes_ = nullptr;
  obs::Counter* metric_probe_rels_ = nullptr;
  obs::Counter* metric_probe_out_ = nullptr;
  obs::Counter* metric_probe_in_ = nullptr;
};

}  // namespace aion::core

#endif  // AION_CORE_LINEAGESTORE_H_
