// TcpListener: the accept-loop / worker-thread / shutdown machinery shared
// by the bolt-like server and the HTTP observability endpoint. One instance
// owns a listening socket on 127.0.0.1, runs a thread-per-connection serve
// callback, and tears everything down on Stop(): the listener socket is shut
// down to unpark accept(), and every live connection fd is shut down to
// unpark workers blocked in read() — so neither protocol can leak parked
// threads on shutdown.
#ifndef AION_SERVER_LISTENER_H_
#define AION_SERVER_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace aion::server {

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral), starts accepting, and serves
  /// each accepted connection by calling `serve(fd)` on a dedicated thread
  /// (TCP_NODELAY set). The listener owns the fd: it deregisters and closes
  /// it after `serve` returns; `serve` must not close it. Returns the bound
  /// port.
  util::StatusOr<uint16_t> Start(uint16_t port, std::function<void(int)> serve);

  /// Stops accepting, shuts down the listener and every live connection fd
  /// (unparking workers blocked in read()), and joins all threads. Safe to
  /// call repeatedly.
  void Stop();

  uint16_t port() const { return port_; }

  /// True between a successful Start and Stop. Serve loops use this to exit
  /// promptly once shutdown begins.
  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();

  std::function<void(int)> serve_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  // Live connection sockets; Stop() shuts them down to unblock workers
  // parked in read(). The wrapper thread deregisters the fd under
  // threads_mu_ before closing, so Stop never touches a reused fd.
  std::vector<int> connection_fds_;
  std::mutex threads_mu_;
};

}  // namespace aion::server

#endif  // AION_SERVER_LISTENER_H_
