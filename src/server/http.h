// ObservabilityHttpServer: a minimal embedded HTTP/1.0 endpoint (GET only,
// one request per connection) so curl, Prometheus, and Grafana can see the
// system with zero client code:
//   GET /metrics       -> 200, Prometheus text exposition of every
//                         instrument (health probes refresh their gauges
//                         first, so derived signals are current);
//   GET /healthz       -> 200 when every watchdog check passes, 503 when
//                         degraded; body is the HealthReport JSON either way;
//   GET /debug/flight  -> 200, the flight recorder's ring as JSON;
//   GET /debug/queries -> 200, the workload registry's live queries and
//                         per-session accounting as JSON.
// Runs on its own port next to the bolt-like listener and shares its
// TcpListener shutdown path (parked accept/read threads are unblocked on
// Stop).
#ifndef AION_SERVER_HTTP_H_
#define AION_SERVER_HTTP_H_

#include <cstdint>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/workload_registry.h"
#include "query/engine.h"
#include "server/listener.h"
#include "util/status.h"

namespace aion::server {

class ObservabilityHttpServer {
 public:
  /// Serves `engine`'s registry, and — when the engine fronts an AionStore —
  /// its health watchdog and flight recorder. Without one, /healthz reports
  /// healthy (no checks) and /debug/flight is 404.
  explicit ObservabilityHttpServer(query::QueryEngine* engine);

  /// Raw wiring for tests and embedded use; any pointer may be null
  /// (`metrics` null makes /metrics an empty exposition, `workload` null
  /// makes /debug/queries a 404).
  ObservabilityHttpServer(obs::MetricsRegistry* metrics,
                          obs::HealthWatchdog* watchdog,
                          obs::FlightRecorder* flight,
                          obs::WorkloadRegistry* workload = nullptr);

  ~ObservabilityHttpServer();

  ObservabilityHttpServer(const ObservabilityHttpServer&) = delete;
  ObservabilityHttpServer& operator=(const ObservabilityHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving. Returns the
  /// bound port.
  util::StatusOr<uint16_t> Start(uint16_t port = 0);

  /// Stops the listener, unparking and joining all connection threads.
  void Stop() { listener_.Stop(); }

  uint16_t port() const { return listener_.port(); }
  uint64_t requests_served() const { return requests_served_; }

 private:
  void ServeConnection(int fd);

  obs::MetricsRegistry* metrics_;
  obs::HealthWatchdog* watchdog_;
  obs::FlightRecorder* flight_;
  obs::WorkloadRegistry* workload_;
  TcpListener listener_;
  std::atomic<uint64_t> requests_served_{0};

  // Observability of the endpoint itself (null without a registry).
  obs::Counter* metric_requests_ = nullptr;       // http.requests
  obs::Counter* metric_bad_requests_ = nullptr;   // http.bad_requests
};

}  // namespace aion::server

#endif  // AION_SERVER_HTTP_H_
