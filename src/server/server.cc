#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "obs/trace.h"
#include "server/protocol.h"

namespace aion::server {

using util::Status;
using util::StatusOr;

BoltLikeServer::BoltLikeServer(query::QueryEngine* engine) : engine_(engine) {
  obs::MetricsRegistry* metrics = engine_->metrics();
  metric_connections_ = metrics->counter("server.connections");
  metric_queries_ = metrics->counter("server.queries");
  metric_failures_ = metrics->counter("server.failures");
  metric_metrics_requests_ = metrics->counter("server.metrics_requests");
  metric_prometheus_requests_ = metrics->counter("server.prometheus_requests");
  metric_ingest_batches_ = metrics->counter("server.ingest_batches");
  metric_ingest_updates_ = metrics->counter("server.ingest_updates");
  metric_frame_read_ = metrics->histogram("server.frame_read_nanos");
  metric_handle_ = metrics->histogram("server.handle_nanos");
}

BoltLikeServer::~BoltLikeServer() { Stop(); }

StatusOr<uint16_t> BoltLikeServer::Start(uint16_t port) {
  return listener_.Start(port, [this](int fd) { ServeConnection(fd); });
}

void BoltLikeServer::Stop() {
  // Cancel before closing sockets: TcpListener::Stop joins the connection
  // threads, and a worker deep inside a long TimeStore scan never touches
  // its (already shut down) socket until the statement finishes. The cancel
  // flag gets it to the next operator-row boundary instead. A statement
  // arriving in the tiny window after this sweep runs to completion — the
  // loop below exits on `listener_.running()` before reading another frame.
  engine_->workload()->CancelAll();
  listener_.Stop();
}

void BoltLikeServer::ServeConnection(int fd) {
  metric_connections_->Add();
  // Connection-lifetime span: query spans executed on this thread nest
  // under it in the exported trace (their parent_id is this span's id).
  AION_TRACE_SPAN("server.connection");
  // One workload session per connection: every statement this thread
  // executes is attributed to it (dbms.sessions(), slowlog, capture).
  obs::SessionScope session(engine_->workload()->NextSessionId());
  // One-row snapshot replies (METRICS / PROMETHEUS).
  auto send_snapshot = [this, fd](std::string body, const char* column) {
    Message record;
    record.type = MessageType::kRecord;
    EncodeRow({query::Value(std::move(body))}, &record.payload);
    if (!WriteMessage(fd, record).ok()) return false;
    Message success;
    success.type = MessageType::kSuccess;
    EncodeColumns({column}, &success.payload);
    return WriteMessage(fd, success).ok();
  };
  while (listener_.running()) {
    auto message = [&] {
      // Wait-for-frame + frame decode; long values here mean idle clients
      // or slow framing, not slow queries.
      obs::ScopedLatency frame_latency(metric_frame_read_);
      return ReadMessage(fd);
    }();
    if (!message.ok()) break;  // peer gone
    if (message->type == MessageType::kGoodbye) break;
    if (message->type == MessageType::kMetrics) {
      metric_metrics_requests_->Add();
      if (!send_snapshot(engine_->metrics()->ToJson(), "metrics")) break;
      continue;
    }
    if (message->type == MessageType::kPrometheus) {
      metric_prometheus_requests_->Add();
      if (!send_snapshot(engine_->metrics()->ToPrometheus(), "prometheus")) {
        break;
      }
      continue;
    }
    if (message->type == MessageType::kIngest) {
      obs::ScopedLatency handle_latency(metric_handle_);
      auto fail = [this, fd](const std::string& why) {
        metric_failures_->Add();
        Message failure;
        failure.type = MessageType::kFailure;
        failure.payload = why;
        return WriteMessage(fd, failure).ok();
      };
      auto updates = graph::DecodeUpdateBatch(message->payload);
      if (!updates.ok()) {
        // Malformed batch: the frame itself was well-formed, so the
        // connection stays usable.
        if (!fail("ingest: " + updates.status().ToString())) break;
        continue;
      }
      auto txn = engine_->db()->Begin();
      for (graph::GraphUpdate& u : *updates) txn->Add(std::move(u));
      const size_t num_updates = txn->num_updates();
      auto ts = txn->Commit();
      if (!ts.ok()) {
        if (!fail("ingest: " + ts.status().ToString())) break;
        continue;
      }
      metric_ingest_batches_->Add();
      metric_ingest_updates_->Add(num_updates);
      Message record;
      record.type = MessageType::kRecord;
      EncodeRow({query::Value(static_cast<int64_t>(*ts))}, &record.payload);
      if (!WriteMessage(fd, record).ok()) break;
      Message success;
      success.type = MessageType::kSuccess;
      EncodeColumns({"ts"}, &success.payload);
      if (!WriteMessage(fd, success).ok()) break;
      continue;
    }
    if (message->type != MessageType::kRun) {
      // Malformed frame: reply FAILURE but keep the connection alive — a
      // client that sent one bad message can still issue valid RUNs.
      metric_failures_->Add();
      Message failure;
      failure.type = MessageType::kFailure;
      failure.payload = "protocol error: expected RUN";
      if (!WriteMessage(fd, failure).ok()) break;
      continue;
    }
    obs::ScopedLatency handle_latency(metric_handle_);
    auto result = engine_->Execute(message->payload);
    if (!result.ok()) {
      metric_failures_->Add();
      Message failure;
      failure.type = MessageType::kFailure;
      failure.payload = result.status().ToString();
      if (!WriteMessage(fd, failure).ok()) break;
      continue;
    }
    queries_served_.fetch_add(1);
    metric_queries_->Add();
    bool io_ok = true;
    for (const auto& row : result->rows) {
      Message record;
      record.type = MessageType::kRecord;
      EncodeRow(row, &record.payload);
      if (!WriteMessage(fd, record).ok()) {
        io_ok = false;
        break;
      }
    }
    if (!io_ok) break;
    Message success;
    success.type = MessageType::kSuccess;
    EncodeColumns(result->columns, &success.payload);
    if (!WriteMessage(fd, success).ok()) break;
  }
  // The TcpListener owns the fd: it deregisters and closes it once this
  // returns.
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<BoltLikeClient>> BoltLikeClient::Connect(
    uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::IOError(std::string("connect: ") + strerror(errno));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<BoltLikeClient>(new BoltLikeClient(fd));
}

BoltLikeClient::~BoltLikeClient() {
  Message goodbye;
  goodbye.type = MessageType::kGoodbye;
  (void)WriteMessage(fd_, goodbye);
  ::close(fd_);
}

StatusOr<query::QueryResult> BoltLikeClient::Run(const std::string& text) {
  Message run;
  run.type = MessageType::kRun;
  run.payload = text;
  AION_RETURN_IF_ERROR(WriteMessage(fd_, run));
  query::QueryResult result;
  for (;;) {
    AION_ASSIGN_OR_RETURN(Message message, ReadMessage(fd_));
    switch (message.type) {
      case MessageType::kRecord: {
        AION_ASSIGN_OR_RETURN(auto row, DecodeRow(message.payload));
        result.rows.push_back(std::move(row));
        break;
      }
      case MessageType::kSuccess: {
        AION_ASSIGN_OR_RETURN(result.columns,
                              DecodeColumns(message.payload));
        return result;
      }
      case MessageType::kFailure:
        return Status::Aborted("server: " + message.payload);
      default:
        return Status::Corruption("unexpected message type");
    }
  }
}

namespace {

/// Shared by METRICS and PROMETHEUS: send the request type, read back the
/// single-string RECORD, and consume the trailing SUCCESS.
StatusOr<std::string> RequestSnapshot(int fd, MessageType type) {
  Message request;
  request.type = type;
  AION_RETURN_IF_ERROR(WriteMessage(fd, request));
  std::string body;
  for (;;) {
    AION_ASSIGN_OR_RETURN(Message message, ReadMessage(fd));
    switch (message.type) {
      case MessageType::kRecord: {
        AION_ASSIGN_OR_RETURN(auto row, DecodeRow(message.payload));
        if (row.size() != 1 || !row[0].is_string()) {
          return Status::Corruption("snapshot row must be one string");
        }
        body = row[0].AsString();
        break;
      }
      case MessageType::kSuccess:
        return body;
      case MessageType::kFailure:
        return Status::Aborted("server: " + message.payload);
      default:
        return Status::Corruption("unexpected message type");
    }
  }
}

}  // namespace

StatusOr<graph::Timestamp> BoltLikeClient::IngestBatch(
    const std::vector<graph::GraphUpdate>& updates) {
  Message ingest;
  ingest.type = MessageType::kIngest;
  graph::EncodeUpdateBatch(updates, &ingest.payload);
  AION_RETURN_IF_ERROR(WriteMessage(fd_, ingest));
  graph::Timestamp ts = 0;
  for (;;) {
    AION_ASSIGN_OR_RETURN(Message message, ReadMessage(fd_));
    switch (message.type) {
      case MessageType::kRecord: {
        AION_ASSIGN_OR_RETURN(auto row, DecodeRow(message.payload));
        if (row.size() != 1 || !row[0].is_int()) {
          return Status::Corruption("ingest row must be one int");
        }
        ts = static_cast<graph::Timestamp>(row[0].AsInt());
        break;
      }
      case MessageType::kSuccess:
        return ts;
      case MessageType::kFailure:
        return Status::Aborted("server: " + message.payload);
      default:
        return Status::Corruption("unexpected message type");
    }
  }
}

StatusOr<std::string> BoltLikeClient::Metrics() {
  return RequestSnapshot(fd_, MessageType::kMetrics);
}

StatusOr<std::string> BoltLikeClient::Prometheus() {
  return RequestSnapshot(fd_, MessageType::kPrometheus);
}

}  // namespace aion::server
