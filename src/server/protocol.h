// Wire protocol for the client-server experiments (Sec 6.7): a compact
// length-prefixed binary message protocol in the spirit of Neo4j's Bolt —
// queries travel as RUN messages; results stream back as RECORD messages
// terminated by SUCCESS (or FAILURE). See DESIGN.md substitutions.
//
// Framing: [u32 payload length][u8 message type][payload bytes].
// RECORD payload: u32 column count, then per cell a type tag + value.
#ifndef AION_SERVER_PROTOCOL_H_
#define AION_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "query/value.h"
#include "util/status.h"

namespace aion::server {

enum class MessageType : uint8_t {
  kRun = 1,      // client -> server: query text
  kRecord = 2,   // server -> client: one row
  kSuccess = 3,  // server -> client: end of results (payload: columns)
  kFailure = 4,  // server -> client: error message
  kGoodbye = 5,  // client -> server: close
  kMetrics = 6,  // client -> server: request a metrics snapshot; the server
                 // answers with one RECORD holding the registry as a JSON
                 // string, then SUCCESS with the single column "metrics"
  kPrometheus = 7,  // client -> server: request the registry in Prometheus
                    // text exposition; one RECORD with the text, then
                    // SUCCESS with the single column "prometheus"
  kIngest = 8,  // client -> server: one transaction's updates as an
                // EncodeUpdateBatch payload; the server commits them
                // atomically and answers one RECORD holding the commit
                // timestamp, then SUCCESS with the single column "ts"
};

struct Message {
  MessageType type = MessageType::kRun;
  std::string payload;
};

/// Blocking exact-size socket I/O. Return IOError on closed peers.
util::Status WriteMessage(int fd, const Message& message);
util::StatusOr<Message> ReadMessage(int fd);

/// Row <-> RECORD payload.
void EncodeRow(const std::vector<query::Value>& row, std::string* dst);
util::StatusOr<std::vector<query::Value>> DecodeRow(util::Slice payload);

/// Column list <-> SUCCESS payload.
void EncodeColumns(const std::vector<std::string>& columns, std::string* dst);
util::StatusOr<std::vector<std::string>> DecodeColumns(util::Slice payload);

}  // namespace aion::server

#endif  // AION_SERVER_PROTOCOL_H_
