#include "server/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>

namespace aion::server {

using util::StatusOr;

namespace {

// Request heads beyond this are rejected (no legitimate GET for our three
// routes comes close).
constexpr size_t kMaxRequestBytes = 8192;

const char* ReasonFor(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

void SendResponse(int fd, int status, const std::string& content_type,
                  const std::string& body) {
  std::string response = "HTTP/1.0 " + std::to_string(status) + " " +
                         ReasonFor(status) + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) return;  // peer gone; the listener closes the fd
    sent += static_cast<size_t>(n);
  }
}

/// Reads until the end of the request head (CRLFCRLF). Returns false on
/// disconnect, oversized head, or malformed framing.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->find("\r\n\r\n") == std::string::npos) {
    if (head->size() > kMaxRequestBytes) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    head->append(buf, static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

ObservabilityHttpServer::ObservabilityHttpServer(query::QueryEngine* engine)
    : ObservabilityHttpServer(
          engine->metrics(),
          engine->aion() != nullptr ? engine->aion()->health_watchdog()
                                    : nullptr,
          engine->aion() != nullptr ? engine->aion()->flight_recorder()
                                    : nullptr,
          engine->workload()) {}

ObservabilityHttpServer::ObservabilityHttpServer(obs::MetricsRegistry* metrics,
                                                 obs::HealthWatchdog* watchdog,
                                                 obs::FlightRecorder* flight,
                                                 obs::WorkloadRegistry* workload)
    : metrics_(metrics),
      watchdog_(watchdog),
      flight_(flight),
      workload_(workload) {
  if (metrics_ != nullptr) {
    metric_requests_ = metrics_->counter("http.requests");
    metric_bad_requests_ = metrics_->counter("http.bad_requests");
  }
}

ObservabilityHttpServer::~ObservabilityHttpServer() { Stop(); }

StatusOr<uint16_t> ObservabilityHttpServer::Start(uint16_t port) {
  return listener_.Start(port, [this](int fd) { ServeConnection(fd); });
}

void ObservabilityHttpServer::ServeConnection(int fd) {
  // HTTP/1.0, one request per connection: read the head, route, respond.
  std::string head;
  if (!ReadRequestHead(fd, &head)) {
    if (metric_bad_requests_ != nullptr) metric_bad_requests_->Add();
    return;
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (metric_requests_ != nullptr) metric_requests_->Add();

  // "METHOD SP PATH SP VERSION CRLF ..." — we only need the first two.
  const size_t method_end = head.find(' ');
  if (method_end == std::string::npos) {
    SendResponse(fd, 400, "text/plain", "malformed request line\n");
    return;
  }
  const std::string method = head.substr(0, method_end);
  const size_t path_end = head.find_first_of(" \r\n", method_end + 1);
  if (path_end == std::string::npos) {
    SendResponse(fd, 400, "text/plain", "malformed request line\n");
    return;
  }
  std::string path = head.substr(method_end + 1, path_end - method_end - 1);
  const size_t query_pos = path.find('?');
  if (query_pos != std::string::npos) path.resize(query_pos);

  if (method != "GET") {
    SendResponse(fd, 405, "text/plain", "GET only\n");
    return;
  }

  if (path == "/metrics") {
    // Evaluate first so probe-derived gauges (watermark lag, commit-queue
    // age) are current in the exposition.
    if (watchdog_ != nullptr) watchdog_->Evaluate();
    const std::string body =
        metrics_ != nullptr ? metrics_->ToPrometheus() : std::string();
    SendResponse(fd, 200, "text/plain; version=0.0.4", body);
    return;
  }
  if (path == "/healthz") {
    if (watchdog_ == nullptr) {
      SendResponse(fd, 200, "application/json",
                   "{\"healthy\":true,\"checks\":[]}");
      return;
    }
    const obs::HealthReport report = watchdog_->Evaluate();
    SendResponse(fd, report.healthy ? 200 : 503, "application/json",
                 report.ToJson());
    return;
  }
  if (path == "/debug/flight") {
    if (flight_ == nullptr) {
      SendResponse(fd, 404, "text/plain", "no flight recorder\n");
      return;
    }
    SendResponse(fd, 200, "application/json", flight_->ToJson());
    return;
  }
  if (path == "/debug/queries") {
    if (workload_ == nullptr) {
      SendResponse(fd, 404, "text/plain", "no workload registry\n");
      return;
    }
    SendResponse(fd, 200, "application/json", workload_->ToJson());
    return;
  }
  SendResponse(fd, 404, "text/plain", "unknown path\n");
}

}  // namespace aion::server
