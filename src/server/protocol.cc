#include "server/protocol.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/coding.h"

namespace aion::server {

using query::Value;
using util::Status;
using util::StatusOr;

namespace {

Status WriteAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a peer closing mid-write surfaces as EPIPE, not SIGPIPE.
    const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + strerror(errno));
    }
    if (w == 0) return Status::IOError("peer closed during write");
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadAll(int fd, char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, data + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + strerror(errno));
    }
    if (r == 0) return Status::IOError("peer closed during read");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

// Cell tags.
constexpr uint8_t kNullTag = 0;
constexpr uint8_t kBoolTag = 1;
constexpr uint8_t kIntTag = 2;
constexpr uint8_t kDoubleTag = 3;
constexpr uint8_t kStringTag = 4;
constexpr uint8_t kEntityTag = 5;  // nodes/relationships travel rendered

}  // namespace

Status WriteMessage(int fd, const Message& message) {
  std::string framed;
  framed.reserve(5 + message.payload.size());
  util::PutFixed32(&framed, static_cast<uint32_t>(message.payload.size()));
  framed.push_back(static_cast<char>(message.type));
  framed.append(message.payload);
  return WriteAll(fd, framed.data(), framed.size());
}

StatusOr<Message> ReadMessage(int fd) {
  char header[5];
  AION_RETURN_IF_ERROR(ReadAll(fd, header, 5));
  Message message;
  const uint32_t length = util::DecodeFixed32(header);
  message.type = static_cast<MessageType>(header[4]);
  message.payload.resize(length);
  if (length > 0) {
    AION_RETURN_IF_ERROR(ReadAll(fd, message.payload.data(), length));
  }
  return message;
}

void EncodeRow(const std::vector<Value>& row, std::string* dst) {
  util::PutFixed32(dst, static_cast<uint32_t>(row.size()));
  for (const Value& cell : row) {
    if (cell.is_null()) {
      dst->push_back(static_cast<char>(kNullTag));
    } else if (cell.is_bool()) {
      dst->push_back(static_cast<char>(kBoolTag));
      dst->push_back(cell.AsBool() ? 1 : 0);
    } else if (cell.is_int()) {
      dst->push_back(static_cast<char>(kIntTag));
      util::PutVarint64(dst, util::ZigZagEncode(cell.AsInt()));
    } else if (cell.is_double()) {
      dst->push_back(static_cast<char>(kDoubleTag));
      util::PutDouble(dst, cell.AsDouble());
    } else if (cell.is_string()) {
      dst->push_back(static_cast<char>(kStringTag));
      util::PutLengthPrefixedSlice(dst, cell.AsString());
    } else {
      dst->push_back(static_cast<char>(kEntityTag));
      util::PutLengthPrefixedSlice(dst, cell.ToString());
    }
  }
}

StatusOr<std::vector<Value>> DecodeRow(util::Slice payload) {
  if (payload.size() < 4) return Status::Corruption("short row payload");
  const uint32_t count = util::DecodeFixed32(payload.data());
  payload.RemovePrefix(4);
  std::vector<Value> row;
  row.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (payload.empty()) return Status::Corruption("truncated row");
    const uint8_t tag = static_cast<uint8_t>(payload[0]);
    payload.RemovePrefix(1);
    switch (tag) {
      case kNullTag:
        row.emplace_back();
        break;
      case kBoolTag: {
        if (payload.empty()) return Status::Corruption("truncated bool");
        row.emplace_back(payload[0] != 0);
        payload.RemovePrefix(1);
        break;
      }
      case kIntTag: {
        uint64_t zz;
        if (!util::GetVarint64(&payload, &zz)) {
          return Status::Corruption("truncated int");
        }
        row.emplace_back(util::ZigZagDecode(zz));
        break;
      }
      case kDoubleTag: {
        if (payload.size() < 8) return Status::Corruption("truncated double");
        row.emplace_back(util::DecodeDouble(payload.data()));
        payload.RemovePrefix(8);
        break;
      }
      case kStringTag:
      case kEntityTag: {
        util::Slice s;
        if (!util::GetLengthPrefixedSlice(&payload, &s)) {
          return Status::Corruption("truncated string");
        }
        row.emplace_back(s.ToString());
        break;
      }
      default:
        return Status::Corruption("unknown cell tag");
    }
  }
  return row;
}

void EncodeColumns(const std::vector<std::string>& columns,
                   std::string* dst) {
  util::PutFixed32(dst, static_cast<uint32_t>(columns.size()));
  for (const std::string& c : columns) {
    util::PutLengthPrefixedSlice(dst, c);
  }
}

StatusOr<std::vector<std::string>> DecodeColumns(util::Slice payload) {
  if (payload.size() < 4) return Status::Corruption("short columns payload");
  const uint32_t count = util::DecodeFixed32(payload.data());
  payload.RemovePrefix(4);
  std::vector<std::string> columns;
  columns.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    util::Slice s;
    if (!util::GetLengthPrefixedSlice(&payload, &s)) {
      return Status::Corruption("truncated column name");
    }
    columns.push_back(s.ToString());
  }
  return columns;
}

}  // namespace aion::server
