// BoltLikeServer: the client-server arrangement of Sec 6.7 — a TCP listener
// on localhost whose connections are served by a dedicated worker pool, each
// running temporal Cypher through a shared QueryEngine. Exercises the
// systemic overheads (framing, copies, scheduling) the paper measures
// against embedded mode.
#ifndef AION_SERVER_SERVER_H_
#define AION_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "query/engine.h"
#include "server/listener.h"
#include "util/status.h"

namespace aion::server {

class BoltLikeServer {
 public:
  /// `engine` must outlive the server. Query execution is shared-state
  /// thread-safe (reads via internal store latches, writes via commit
  /// serialization). The server records its "server.*" instruments into the
  /// engine's registry, so a METRICS request reports every layer at once.
  explicit BoltLikeServer(query::QueryEngine* engine);
  ~BoltLikeServer();

  BoltLikeServer(const BoltLikeServer&) = delete;
  BoltLikeServer& operator=(const BoltLikeServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting. Returns
  /// the bound port.
  util::StatusOr<uint16_t> Start(uint16_t port = 0);

  /// Stops accepting, cancels every in-flight registered query (so a worker
  /// parked inside a long scan or replay reaches its next row boundary and
  /// returns instead of blocking teardown), then closes the listener and
  /// joins all workers (shared TcpListener shutdown path: parked
  /// accept/read threads are unblocked via socket shutdown, same as the
  /// HTTP endpoint).
  void Stop();

  uint16_t port() const { return listener_.port(); }
  uint64_t queries_served() const { return queries_served_.load(); }

 private:
  void ServeConnection(int fd);

  query::QueryEngine* engine_;
  TcpListener listener_;
  std::atomic<uint64_t> queries_served_{0};

  // Observability (resolved once from the engine's registry).
  obs::Counter* metric_connections_ = nullptr;
  obs::Counter* metric_queries_ = nullptr;
  obs::Counter* metric_failures_ = nullptr;
  obs::Counter* metric_metrics_requests_ = nullptr;
  obs::Counter* metric_prometheus_requests_ = nullptr;
  obs::Counter* metric_ingest_batches_ = nullptr;
  obs::Counter* metric_ingest_updates_ = nullptr;
  obs::Histogram* metric_frame_read_ = nullptr;  // wait + frame decode
  obs::Histogram* metric_handle_ = nullptr;      // execute + result framing
};

/// Client side: connects and runs queries synchronously.
class BoltLikeClient {
 public:
  static util::StatusOr<std::unique_ptr<BoltLikeClient>> Connect(
      uint16_t port);

  ~BoltLikeClient();

  BoltLikeClient(const BoltLikeClient&) = delete;
  BoltLikeClient& operator=(const BoltLikeClient&) = delete;

  /// Sends RUN and collects RECORDs until SUCCESS/FAILURE.
  util::StatusOr<query::QueryResult> Run(const std::string& text);

  /// Sends INGEST: commits `updates` as one transaction on the server and
  /// returns its commit timestamp. Bulk loaders amortize framing and
  /// round-trips by batching many updates per call.
  util::StatusOr<graph::Timestamp> IngestBatch(
      const std::vector<graph::GraphUpdate>& updates);

  /// Sends METRICS and returns the server's metrics snapshot as JSON.
  util::StatusOr<std::string> Metrics();

  /// Sends PROMETHEUS and returns the snapshot in text exposition format.
  util::StatusOr<std::string> Prometheus();

 private:
  explicit BoltLikeClient(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace aion::server

#endif  // AION_SERVER_SERVER_H_
