#include "server/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace aion::server {

using util::Status;
using util::StatusOr;

TcpListener::~TcpListener() { Stop(); }

StatusOr<uint16_t> TcpListener::Start(uint16_t port,
                                      std::function<void(int)> serve) {
  serve_ = std::move(serve);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void TcpListener::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    // Unblock workers parked in read(): without this, joining a connection
    // whose client is idle but still connected deadlocks. The wrapper
    // thread owns the close(); it deregisters the fd under this mutex
    // first.
    for (int conn_fd : connection_fds_) ::shutdown(conn_fd, SHUT_RDWR);
    workers.swap(connection_threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void TcpListener::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(threads_mu_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] {
      serve_(fd);
      {
        std::lock_guard<std::mutex> fds_lock(threads_mu_);
        connection_fds_.erase(
            std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
            connection_fds_.end());
      }
      ::close(fd);
    });
  }
}

}  // namespace aion::server
