#include "obs/workload_registry.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace aion::obs {

namespace {

uint64_t UnixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

thread_local WorkloadRegistry::RunningQuery* tls_active_query = nullptr;
thread_local uint64_t tls_session_id = 0;

}  // namespace

WorkloadRegistry::WorkloadRegistry(MetricsRegistry* metrics)
    : WorkloadRegistry(metrics, Options()) {}

WorkloadRegistry::WorkloadRegistry(MetricsRegistry* metrics,
                                   const Options& options)
    : options_(options),
      anchor_unix_millis_(UnixMillisNow()),
      anchor_nanos_(NowNanos()) {
  if (metrics != nullptr) {
    gauge_active_ = metrics->gauge("workload.active_queries");
    gauge_longest_ = metrics->gauge("workload.longest_running_nanos");
    metric_registered_ = metrics->counter("workload.registered");
    metric_completed_ = metrics->counter("workload.completed");
    metric_failures_ = metrics->counter("workload.failures");
    metric_cancelled_ = metrics->counter("workload.cancelled");
    gauge_sessions_ = metrics->gauge("session.tracked");
    metric_session_queries_ = metrics->counter("session.queries");
    metric_session_rows_ = metrics->counter("session.rows");
  }
}

std::shared_ptr<WorkloadRegistry::RunningQuery> WorkloadRegistry::Register(
    uint64_t query_id, uint64_t session_id, const std::string& text,
    uint64_t start_nanos) {
  if (!enabled()) return nullptr;
  if (start_nanos == 0) start_nanos = NowNanos();
  auto fill = [&](RunningQuery* query) {
    query->query_id = query_id;
    query->session_id = session_id;
    query->text = text;  // reuses a recycled entry's capacity
    query->start_nanos = start_nanos;
    query->start_unix_millis =
        anchor_unix_millis_ + (start_nanos - anchor_nanos_) / 1000000;
  };
  std::shared_ptr<RunningQuery> query;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Recycle a finished entry once the pool holds the only reference (a
    // snapshot or kill handle taken before Finish may still pin it).
    if (!pool_.empty() && pool_.back().use_count() == 1) {
      query = std::move(pool_.back());
      pool_.pop_back();
      query->route.store("-", std::memory_order_relaxed);
      query->rows.store(0, std::memory_order_relaxed);
      query->cancel.store(false, std::memory_order_relaxed);
      fill(query.get());
      running_.push_back(query.get());
      ++pending_registered_;
      return query;
    }
  }
  query = std::make_shared<RunningQuery>();
  fill(query.get());
  std::lock_guard<std::mutex> lock(mu_);
  running_.push_back(query.get());
  ++pending_registered_;
  return query;
}

void WorkloadRegistry::Finish(std::shared_ptr<RunningQuery> query, bool ok,
                              bool cancelled, uint64_t wall_nanos,
                              uint64_t rows) {
  if (query == nullptr) return;
  constexpr size_t kPoolCap = 64;
  const uint64_t session_id = query->session_id;
  // Finish runs right after the statement's end-of-execution timestamp was
  // taken, so start + wall is "now" to well under a microsecond — close
  // enough for session eviction order without a third clock read.
  const uint64_t finished_nanos = query->start_nanos + wall_nanos;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < running_.size(); ++i) {
    if (running_[i] != query.get()) continue;
    running_[i] = running_.back();
    running_.pop_back();
    if (pool_.size() < kPoolCap) pool_.push_back(std::move(query));
    break;
  }
  ++pending_completed_;
  if (!ok) ++pending_failures_;
  if (cancelled) ++pending_cancelled_;

  SessionAccount* account = last_account_;
  if (account == nullptr || last_session_id_ != session_id) {
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      if (sessions_.size() >= options_.max_sessions) {
        // Evict the least-recently-active session to stay bounded.
        auto victim = sessions_.begin();
        for (auto cand = sessions_.begin(); cand != sessions_.end(); ++cand) {
          if (cand->second->last_active_nanos <
              victim->second->last_active_nanos) {
            victim = cand;
          }
        }
        sessions_.erase(victim);
      }
      it = sessions_.emplace(session_id, std::make_unique<SessionAccount>())
               .first;
    }
    account = it->second.get();
    last_account_ = account;
    last_session_id_ = session_id;
  }
  account->queries += 1;
  account->rows += rows;
  account->wall_nanos += wall_nanos;
  if (!ok) account->failures += 1;
  if (cancelled) account->cancelled += 1;
  account->last_active_nanos = finished_nanos;
  account->latency.Record(wall_nanos);
  ++pending_session_queries_;
  pending_session_rows_ += rows;
  if (++unflushed_ >= kFlushEvery) FlushInstrumentsLocked();
}

void WorkloadRegistry::FlushInstrumentsLocked() const {
  unflushed_ = 0;
  if (metric_registered_ != nullptr && pending_registered_ != 0) {
    metric_registered_->Add(pending_registered_);
  }
  if (metric_completed_ != nullptr && pending_completed_ != 0) {
    metric_completed_->Add(pending_completed_);
  }
  if (metric_failures_ != nullptr && pending_failures_ != 0) {
    metric_failures_->Add(pending_failures_);
  }
  if (metric_cancelled_ != nullptr && pending_cancelled_ != 0) {
    metric_cancelled_->Add(pending_cancelled_);
  }
  if (metric_session_queries_ != nullptr && pending_session_queries_ != 0) {
    metric_session_queries_->Add(pending_session_queries_);
  }
  if (metric_session_rows_ != nullptr && pending_session_rows_ != 0) {
    metric_session_rows_->Add(pending_session_rows_);
  }
  pending_registered_ = pending_completed_ = pending_failures_ = 0;
  pending_cancelled_ = pending_session_queries_ = pending_session_rows_ = 0;
  if (gauge_active_ != nullptr) {
    gauge_active_->Set(static_cast<int64_t>(running_.size()));
  }
  if (gauge_sessions_ != nullptr) {
    gauge_sessions_->Set(static_cast<int64_t>(sessions_.size()));
  }
}

bool WorkloadRegistry::Cancel(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& query : running_) {
    if (query->query_id != query_id) continue;
    query->cancel.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

size_t WorkloadRegistry::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& query : running_) {
    query->cancel.store(true, std::memory_order_relaxed);
  }
  return running_.size();
}

std::vector<WorkloadRegistry::QueryInfo> WorkloadRegistry::Queries() const {
  const uint64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  FlushInstrumentsLocked();
  std::vector<QueryInfo> out;
  out.reserve(running_.size());
  for (const auto& query : running_) {
    QueryInfo info;
    info.query_id = query->query_id;
    info.session_id = query->session_id;
    info.text = query->text;
    info.route = query->route.load(std::memory_order_relaxed);
    info.start_unix_millis = query->start_unix_millis;
    info.elapsed_nanos =
        now > query->start_nanos ? now - query->start_nanos : 0;
    info.rows = query->rows.load(std::memory_order_relaxed);
    info.cancel_requested = query->cancel.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const QueryInfo& a, const QueryInfo& b) {
              return a.query_id < b.query_id;
            });
  return out;
}

std::vector<WorkloadRegistry::SessionInfo> WorkloadRegistry::Sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  FlushInstrumentsLocked();
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, account] : sessions_) {
    SessionInfo info;
    info.session_id = id;
    info.queries = account->queries;
    info.rows = account->rows;
    info.wall_nanos = account->wall_nanos;
    info.failures = account->failures;
    info.cancelled = account->cancelled;
    info.latency = account->latency.Summarize();
    out.push_back(std::move(info));
  }
  return out;
}

uint64_t WorkloadRegistry::LongestRunningNanos() const {
  const uint64_t now = NowNanos();
  uint64_t longest = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FlushInstrumentsLocked();
    for (const auto& query : running_) {
      const uint64_t elapsed =
          now > query->start_nanos ? now - query->start_nanos : 0;
      longest = std::max(longest, elapsed);
    }
  }
  if (gauge_longest_ != nullptr) {
    gauge_longest_->Set(static_cast<int64_t>(longest));
  }
  return longest;
}

std::string WorkloadRegistry::ToJson() const {
  const std::vector<QueryInfo> queries = Queries();
  const std::vector<SessionInfo> sessions = Sessions();
  std::string out = "{\"active\":[";
  bool first = true;
  for (const QueryInfo& q : queries) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"query_id\":");
    AppendU64(&out, q.query_id);
    out.append(",\"session_id\":");
    AppendU64(&out, q.session_id);
    out.append(",\"query\":");
    AppendEscaped(&out, q.text);
    out.append(",\"store\":");
    AppendEscaped(&out, q.route);
    out.append(",\"start_unix_millis\":");
    AppendU64(&out, q.start_unix_millis);
    out.append(",\"elapsed_nanos\":");
    AppendU64(&out, q.elapsed_nanos);
    out.append(",\"rows\":");
    AppendU64(&out, q.rows);
    out.append(",\"cancel_requested\":");
    out.append(q.cancel_requested ? "true" : "false");
    out.push_back('}');
  }
  out.append("],\"sessions\":[");
  first = true;
  for (const SessionInfo& s : sessions) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"session_id\":");
    AppendU64(&out, s.session_id);
    out.append(",\"queries\":");
    AppendU64(&out, s.queries);
    out.append(",\"rows\":");
    AppendU64(&out, s.rows);
    out.append(",\"wall_nanos\":");
    AppendU64(&out, s.wall_nanos);
    out.append(",\"failures\":");
    AppendU64(&out, s.failures);
    out.append(",\"cancelled\":");
    AppendU64(&out, s.cancelled);
    out.append(",\"p99_nanos\":");
    AppendU64(&out, s.latency.p99);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

size_t WorkloadRegistry::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  FlushInstrumentsLocked();
  return running_.size();
}

ActiveQueryScope::ActiveQueryScope(WorkloadRegistry::RunningQuery* query)
    : prev_(tls_active_query) {
  if (query != nullptr) tls_active_query = query;
}

ActiveQueryScope::~ActiveQueryScope() { tls_active_query = prev_; }

WorkloadRegistry::RunningQuery* ActiveQueryScope::Current() {
  return tls_active_query;
}

SessionScope::SessionScope(uint64_t session_id) : prev_(tls_session_id) {
  tls_session_id = session_id;
}

SessionScope::~SessionScope() { tls_session_id = prev_; }

uint64_t SessionScope::CurrentSessionId() { return tls_session_id; }

}  // namespace aion::obs
