#include "obs/capture.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aion::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

/// Finds `"key":` at top level of the line and returns the index just past
/// the colon, or std::string::npos. Keys never appear inside our escaped
/// string values with the surrounding quote+colon shape intact, so a plain
/// substring search on `"key":` is unambiguous for this schema.
size_t FindValue(const std::string& line, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

bool ParseU64At(const std::string& line, const char* key, uint64_t* out) {
  const size_t at = FindValue(line, key);
  if (at == std::string::npos) return false;
  char* end = nullptr;
  *out = std::strtoull(line.c_str() + at, &end, 10);
  return end != line.c_str() + at;
}

bool ParseStringAt(const std::string& line, const char* key,
                   std::string* out) {
  size_t at = FindValue(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return false;
  }
  ++at;
  out->clear();
  while (at < line.size() && line[at] != '"') {
    char c = line[at];
    if (c == '\\' && at + 1 < line.size()) {
      ++at;
      switch (line[at]) {
        case 'n':
          c = '\n';
          break;
        case 'u': {
          if (at + 4 >= line.size()) return false;
          const unsigned long v = std::strtoul(
              line.substr(at + 1, 4).c_str(), nullptr, 16);
          c = static_cast<char>(v);
          at += 4;
          break;
        }
        default:
          c = line[at];  // \" and \\ map to the raw character
      }
    }
    out->push_back(c);
    ++at;
  }
  return at < line.size();
}

}  // namespace

WorkloadCapture::WorkloadCapture(const Options& options) : options_(options) {
  if (enabled()) {
    file_ = std::fopen(options_.path.c_str(), "a");
    if (file_ != nullptr) {
      std::fseek(file_, 0, SEEK_END);
      const long pos = std::ftell(file_);
      file_bytes_ = pos > 0 ? static_cast<size_t>(pos) : 0;
    }
  }
}

WorkloadCapture::~WorkloadCapture() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string WorkloadCapture::ToJsonLine(const Record& record) {
  std::string line;
  line.append("{\"unix_millis\":");
  AppendU64(&line, record.unix_millis);
  line.append(",\"query_id\":");
  AppendU64(&line, record.query_id);
  line.append(",\"session_id\":");
  AppendU64(&line, record.session_id);
  line.append(",\"nanos\":");
  AppendU64(&line, record.nanos);
  line.append(",\"rows\":");
  AppendU64(&line, record.rows);
  line.append(",\"ok\":");
  line.append(record.ok ? "true" : "false");
  line.append(",\"store\":");
  AppendEscaped(&line, record.route);
  line.append(",\"query\":");
  AppendEscaped(&line, record.text);
  line.append(",\"params\":{}");
  line.push_back('}');
  return line;
}

util::StatusOr<WorkloadCapture::Record> WorkloadCapture::ParseJsonLine(
    const std::string& line) {
  Record record;
  if (!ParseU64At(line, "unix_millis", &record.unix_millis) ||
      !ParseU64At(line, "query_id", &record.query_id) ||
      !ParseU64At(line, "session_id", &record.session_id) ||
      !ParseU64At(line, "nanos", &record.nanos) ||
      !ParseU64At(line, "rows", &record.rows) ||
      !ParseStringAt(line, "store", &record.route) ||
      !ParseStringAt(line, "query", &record.text)) {
    return util::Status::Corruption("capture: malformed record: " + line);
  }
  const size_t ok_at = FindValue(line, "ok");
  if (ok_at == std::string::npos) {
    return util::Status::Corruption("capture: malformed record: " + line);
  }
  record.ok = line.compare(ok_at, 4, "true") == 0;
  return record;
}

util::StatusOr<std::vector<WorkloadCapture::Record>> WorkloadCapture::ReadFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return util::Status::IOError("capture: cannot open " + path);
  }
  std::vector<Record> records;
  std::string line;
  int c;
  while ((c = std::fgetc(file)) != EOF) {
    if (c == '\n') {
      if (!line.empty()) {
        auto parsed = ParseJsonLine(line);
        if (!parsed.ok()) {
          std::fclose(file);
          return parsed.status();
        }
        records.push_back(std::move(parsed).value());
        line.clear();
      }
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  std::fclose(file);
  if (!line.empty()) {
    // Tolerate a torn final line (process died mid-write): skip it.
    auto parsed = ParseJsonLine(line);
    if (parsed.ok()) records.push_back(std::move(parsed).value());
  }
  return records;
}

void WorkloadCapture::Append(Record record) {
  if (!enabled()) return;
  if (record.unix_millis == 0) {
    record.unix_millis = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
  const std::string line = ToJsonLine(record);
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  WriteLine(line);
}

void WorkloadCapture::WriteLine(const std::string& line) {
  if (file_ == nullptr) return;
  if (file_bytes_ + line.size() + 1 > options_.max_file_bytes) {
    std::fclose(file_);
    file_ = nullptr;
    const std::string rotated = options_.path + ".1";
    std::remove(rotated.c_str());
    std::rename(options_.path.c_str(), rotated.c_str());
    file_ = std::fopen(options_.path.c_str(), "a");
    file_bytes_ = 0;
    if (file_ == nullptr) return;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  file_bytes_ += line.size() + 1;
}

uint64_t WorkloadCapture::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace aion::obs
