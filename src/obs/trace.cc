#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace aion::obs {

namespace {

std::atomic<uint64_t> g_next_span_id{0};
std::atomic<uint64_t> g_next_query_id{0};
thread_local uint64_t tls_current_span = 0;
thread_local uint64_t tls_current_query = 0;

}  // namespace

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

TraceSink::TraceSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceSink::Record(const TraceEvent& event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_ % capacity_] = event;
  ++next_;
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  const uint64_t live = next_ < capacity_ ? next_ : capacity_;
  out.reserve(live);
  for (uint64_t i = next_ - live; i < next_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

std::string TraceSink::ExportChromeTrace() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "[";
  char buf[384];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    // Complete events: ts/dur are doubles in microseconds per the
    // trace_event spec. pid is constant (one process); tid carries the
    // recording thread so lanes separate in the viewer.
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"aion\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu64
        ",\"args\":{\"span_id\":%" PRIu64 ",\"parent_id\":%" PRIu64
        ",\"query_id\":%" PRIu64 "}}",
        e.name == nullptr ? "" : e.name,
        static_cast<double>(e.start_nanos) / 1000.0,
        static_cast<double>(e.duration_nanos) / 1000.0,
        e.thread_id % 1000000,  // viewers choke on 64-bit tids
        e.span_id, e.parent_id, e.query_id);
    out.append(buf);
  }
  out.push_back(']');
  return out;
}

uint64_t TraceSink::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  for (TraceEvent& e : ring_) e = TraceEvent{};
}

TraceSpan::TraceSpan(const char* name, Histogram* histogram)
    : name_(name),
      histogram_(histogram),
      start_(NowNanos()),
      id_(g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1),
      parent_(tls_current_span) {
  tls_current_span = id_;
}

TraceSpan::~TraceSpan() {
  tls_current_span = parent_;
  const uint64_t duration = NowNanos() - start_;
  if (histogram_ != nullptr) histogram_->Record(duration);
  TraceSink& sink = TraceSink::Global();
  if (!sink.enabled()) return;
  TraceEvent event;
  event.name = name_;
  event.start_nanos = start_;
  event.duration_nanos = duration;
  event.thread_id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  event.span_id = id_;
  event.parent_id = parent_;
  event.query_id = tls_current_query;
  sink.Record(event);
}

uint64_t TraceSpan::CurrentSpanId() { return tls_current_span; }

TraceContext::TraceContext(uint64_t query_id)
    : id_(query_id), prev_(tls_current_query) {
  tls_current_query = id_;
}

TraceContext::~TraceContext() { tls_current_query = prev_; }

uint64_t TraceContext::CurrentQueryId() { return tls_current_query; }

uint64_t TraceContext::NextQueryId() {
  return g_next_query_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace aion::obs
