#include "obs/trace.h"

#include <functional>
#include <thread>

namespace aion::obs {

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

TraceSink::TraceSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceSink::Record(const TraceEvent& event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_ % capacity_] = event;
  ++next_;
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  const uint64_t live = next_ < capacity_ ? next_ : capacity_;
  out.reserve(live);
  for (uint64_t i = next_ - live; i < next_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

uint64_t TraceSink::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  for (TraceEvent& e : ring_) e = TraceEvent{};
}

TraceSpan::~TraceSpan() {
  const uint64_t duration = NowNanos() - start_;
  if (histogram_ != nullptr) histogram_->Record(duration);
  TraceSink& sink = TraceSink::Global();
  if (!sink.enabled()) return;
  TraceEvent event;
  event.name = name_;
  event.start_nanos = start_;
  event.duration_nanos = duration;
  event.thread_id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  sink.Record(event);
}

}  // namespace aion::obs
