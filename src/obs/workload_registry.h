// Workload observatory: the live-query registry. Every statement entering
// query::Engine registers a RunningQuery for the duration of its execution
// — query id (shared with obs::TraceContext, so dbms.queries() joins
// against dbms.traces() and the slow-query log), session id, statement
// text, the store route the planner picked, start time, rows produced, and
// a cooperative cancel flag the operators check at row boundaries. On
// completion the query deregisters into a bounded per-session accounting
// table (queries run, rows, wall nanos, failures, latency percentiles via
// util::LatencySummary).
//
// Surfaces: CALL dbms.queries() / dbms.queries.kill(id) / dbms.sessions(),
// GET /debug/queries on the observability HTTP endpoint, and the
// workload.* / session.* instruments (sampled by the flight recorder like
// every other instrument in the registry).
//
// Cancellation is cooperative and thread-local, like obs::QueryStatsScope:
// an ActiveQueryScope installs the running query on the executing thread,
// and CancellationRequested() — one thread-local load, one relaxed atomic
// load — is checked at operator row boundaries (pattern-match frames,
// history-version loops, TimeStore scan iterations). A killed query
// surfaces util::Status::Cancelled, never a partial result. Work delegated
// to worker threads (parallel replay decode) does not see the scope; the
// calling thread re-checks between phases, which bounds the cancellation
// latency at one such phase.
#ifndef AION_OBS_WORKLOAD_REGISTRY_H_
#define AION_OBS_WORKLOAD_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/histogram.h"

namespace aion::obs {

class WorkloadRegistry {
 public:
  struct Options {
    /// Per-session accounting entries retained; the least-recently-active
    /// session is evicted beyond this. Must be positive.
    size_t max_sessions = 256;
  };

  /// One statement currently executing. Shared between the executing thread
  /// (route/rows updates, cancel checks) and observers (dbms.queries(),
  /// kill, /debug/queries), so the mutable fields are atomics; `route`
  /// only ever holds static strings ("lineage"/"timestore"/"latest"/"-").
  struct RunningQuery {
    uint64_t query_id = 0;
    uint64_t session_id = 0;
    std::string text;
    uint64_t start_unix_millis = 0;
    uint64_t start_nanos = 0;  // steady clock; elapsed = NowNanos() - this
    std::atomic<const char*> route{"-"};
    std::atomic<uint64_t> rows{0};
    std::atomic<bool> cancel{false};
  };

  /// Point-in-time copy of one running query (dbms.queries() rows).
  struct QueryInfo {
    uint64_t query_id = 0;
    uint64_t session_id = 0;
    std::string text;
    std::string route;
    uint64_t start_unix_millis = 0;
    uint64_t elapsed_nanos = 0;
    uint64_t rows = 0;
    bool cancel_requested = false;
  };

  /// Accumulated per-session accounting (dbms.sessions() rows).
  struct SessionInfo {
    uint64_t session_id = 0;
    uint64_t queries = 0;
    uint64_t rows = 0;
    uint64_t wall_nanos = 0;
    uint64_t failures = 0;
    uint64_t cancelled = 0;
    util::LatencySummary latency;  // per-statement wall nanos
  };

  /// `metrics` may be null (no instruments; the registry still works).
  explicit WorkloadRegistry(MetricsRegistry* metrics = nullptr);
  WorkloadRegistry(MetricsRegistry* metrics, const Options& options);

  WorkloadRegistry(const WorkloadRegistry&) = delete;
  WorkloadRegistry& operator=(const WorkloadRegistry&) = delete;

  /// Registers a statement as running. Returns null when disabled (callers
  /// treat a null handle as "not tracked"). Session 0 is the embedded
  /// (connection-less) session. `start_nanos` lets a caller that just read
  /// the steady clock (the engine times parsing right before registering)
  /// donate that timestamp instead of paying a second clock read; 0 means
  /// "read the clock here".
  std::shared_ptr<RunningQuery> Register(uint64_t query_id,
                                         uint64_t session_id,
                                         const std::string& text,
                                         uint64_t start_nanos = 0);

  /// Deregisters `query` and folds its totals into the session table.
  /// `cancelled` marks statements that surfaced util::Status::Cancelled
  /// (counted separately from other failures). Takes the handle by value
  /// (move it in): the registry recycles the entry once all other
  /// references drop. Callers must keep the handle alive from Register
  /// until Finish — the live table holds raw pointers.
  void Finish(std::shared_ptr<RunningQuery> query, bool ok, bool cancelled,
              uint64_t wall_nanos, uint64_t rows);

  /// Requests cooperative cancellation of one running query. Returns false
  /// when no query with that id is running.
  bool Cancel(uint64_t query_id);

  /// Cancels every running query (server shutdown). Returns how many were
  /// flagged.
  size_t CancelAll();

  /// Live queries, ordered by query id.
  std::vector<QueryInfo> Queries() const;

  /// Per-session accounting, ordered by session id.
  std::vector<SessionInfo> Sessions() const;

  /// Wall nanos of the oldest running query (0 when idle). Refreshes the
  /// workload.longest_running_nanos gauge, so the health watchdog probe and
  /// /metrics report the same number.
  uint64_t LongestRunningNanos() const;

  /// {"active":[...],"sessions":[...]} for GET /debug/queries.
  std::string ToJson() const;

  /// Issues a session id for a new connection (ids start at 1; 0 = the
  /// embedded session).
  uint64_t NextSessionId() {
    return next_session_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Disabling makes Register return null — statements run untracked and
  /// unkillable (benchmarks measuring registry overhead toggle this).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t active_count() const;

 private:
  struct SessionAccount {
    uint64_t queries = 0;
    uint64_t rows = 0;
    uint64_t wall_nanos = 0;
    uint64_t failures = 0;
    uint64_t cancelled = 0;
    uint64_t last_active_nanos = 0;  // eviction order
    // Plain-counter histogram: only ever touched under mu_, so Record()
    // costs no locked read-modify-writes on the Finish hot path.
    util::BucketLatencyHistogram latency;
  };

  const Options options_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_session_id_{1};
  // Wall-clock anchor: start_unix_millis derives from the steady clock
  // against this pair, so Register costs no system_clock call.
  uint64_t anchor_unix_millis_ = 0;
  uint64_t anchor_nanos_ = 0;
  mutable std::mutex mu_;
  // Register/Finish sit on the per-statement hot path, so the live set is
  // a small vector of raw pointers (swap-pop erase, no refcount traffic —
  // ownership stays with the caller's handle until Finish) and finished
  // RunningQuery objects are pooled for reuse. An entry is recycled only
  // once the pool holds the sole reference, so observer snapshots and
  // late kill handles stay valid.
  std::vector<RunningQuery*> running_;
  std::vector<std::shared_ptr<RunningQuery>> pool_;
  std::map<uint64_t, std::unique_ptr<SessionAccount>> sessions_;
  // Memo of the last session looked up in Finish (guarded by mu_): the
  // embedded session funnels every statement through session 0, so this
  // skips the map walk on the hot path. Only read on a same-session hit,
  // so an evicted entry is overwritten before it could dangle.
  SessionAccount* last_account_ = nullptr;
  uint64_t last_session_id_ = 0;

  // Instrument updates are batched: the hot path bumps these plain tallies
  // under mu_ and they fold into the counters/gauges every kFlushEvery
  // statements or whenever any read API runs. /metrics may therefore lag
  // the live table by up to kFlushEvery statements; dbms.queries(),
  // dbms.sessions() and /debug/queries always read live state.
  void FlushInstrumentsLocked() const;
  static constexpr uint64_t kFlushEvery = 64;
  mutable uint64_t unflushed_ = 0;
  mutable uint64_t pending_registered_ = 0;
  mutable uint64_t pending_completed_ = 0;
  mutable uint64_t pending_failures_ = 0;
  mutable uint64_t pending_cancelled_ = 0;
  mutable uint64_t pending_session_queries_ = 0;
  mutable uint64_t pending_session_rows_ = 0;

  // Instruments (null without a metrics registry).
  Gauge* gauge_active_ = nullptr;           // workload.active_queries
  Gauge* gauge_longest_ = nullptr;          // workload.longest_running_nanos
  Counter* metric_registered_ = nullptr;    // workload.registered
  Counter* metric_completed_ = nullptr;     // workload.completed
  Counter* metric_failures_ = nullptr;      // workload.failures
  Counter* metric_cancelled_ = nullptr;     // workload.cancelled
  Gauge* gauge_sessions_ = nullptr;         // session.tracked
  Counter* metric_session_queries_ = nullptr;  // session.queries
  Counter* metric_session_rows_ = nullptr;     // session.rows
};

/// RAII: installs `query` as this thread's running query so the engine's
/// operators and the stores underneath can check the cancel flag and update
/// route/rows without plumbing a handle through every signature. Scopes
/// nest (a procedure executing a sub-statement keeps attributing to the
/// outer registered query). Null-safe: a null query makes the scope a
/// no-op.
class ActiveQueryScope {
 public:
  explicit ActiveQueryScope(WorkloadRegistry::RunningQuery* query);
  ~ActiveQueryScope();

  ActiveQueryScope(const ActiveQueryScope&) = delete;
  ActiveQueryScope& operator=(const ActiveQueryScope&) = delete;

  /// The innermost active running query on this thread (null when none).
  static WorkloadRegistry::RunningQuery* Current();

 private:
  WorkloadRegistry::RunningQuery* prev_;
};

/// RAII: tags statements executed on this thread with a session id (server
/// connections; 0 = embedded). Read by the engine at registration time.
class SessionScope {
 public:
  explicit SessionScope(uint64_t session_id);
  ~SessionScope();

  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

  static uint64_t CurrentSessionId();

 private:
  uint64_t prev_;
};

// --- cooperative cancellation tick points ---------------------------------

/// True when the query running on this thread was killed. One thread-local
/// load plus one relaxed atomic load — free enough for per-row checks.
inline bool CancellationRequested() {
  WorkloadRegistry::RunningQuery* q = ActiveQueryScope::Current();
  return q != nullptr && q->cancel.load(std::memory_order_relaxed);
}

/// Publishes the store route of the statement running on this thread.
/// `route` must be a static string.
inline void SetCurrentQueryRoute(const char* route) {
  if (WorkloadRegistry::RunningQuery* q = ActiveQueryScope::Current()) {
    q->route.store(route, std::memory_order_relaxed);
  }
}

/// Counts rows produced by the statement running on this thread (live
/// progress in dbms.queries(); the final count lands at Finish). Only the
/// executing thread writes `rows`, so a load+store replaces the locked
/// read-modify-write — observers just need a torn-free relaxed read.
inline void TickCurrentQueryRows(uint64_t n = 1) {
  if (WorkloadRegistry::RunningQuery* q = ActiveQueryScope::Current()) {
    q->rows.store(q->rows.load(std::memory_order_relaxed) + n,
                  std::memory_order_relaxed);
  }
}

}  // namespace aion::obs

#endif  // AION_OBS_WORKLOAD_REGISTRY_H_
