#include "obs/slowlog.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace aion::obs {

namespace {

uint64_t UnixMillisNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

SlowQueryLog::SlowQueryLog(const Options& options) : options_(options) {
  const size_t capacity =
      options_.ring_capacity == 0 ? 1 : options_.ring_capacity;
  ring_.resize(capacity);
  if (enabled() && !options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "a");
    if (file_ != nullptr) {
      std::fseek(file_, 0, SEEK_END);
      const long pos = std::ftell(file_);
      file_bytes_ = pos > 0 ? static_cast<size_t>(pos) : 0;
    }
  }
}

SlowQueryLog::~SlowQueryLog() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string SlowQueryLog::ToJsonLine(const Entry& entry) {
  std::string line;
  char buf[64];
  line.append("{\"unix_millis\":");
  std::snprintf(buf, sizeof(buf), "%" PRIu64, entry.unix_millis);
  line.append(buf);
  line.append(",\"query_id\":");
  std::snprintf(buf, sizeof(buf), "%" PRIu64, entry.query_id);
  line.append(buf);
  line.append(",\"session_id\":");
  std::snprintf(buf, sizeof(buf), "%" PRIu64, entry.session_id);
  line.append(buf);
  line.append(",\"nanos\":");
  std::snprintf(buf, sizeof(buf), "%" PRIu64, entry.nanos);
  line.append(buf);
  line.append(",\"store\":");
  AppendEscaped(&line, entry.store);
  line.append(",\"query\":");
  AppendEscaped(&line, entry.query);
  line.append(",\"summary\":");
  line.append(entry.summary_json.empty() ? "{}" : entry.summary_json);
  line.push_back('}');
  return line;
}

void SlowQueryLog::Record(Entry entry) {
  if (!enabled() || entry.nanos < options_.threshold_nanos) return;
  if (entry.unix_millis == 0) entry.unix_millis = UnixMillisNow();
  const std::string line = ToJsonLine(entry);
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_ % ring_.size()] = std::move(entry);
  ++next_;
  WriteLine(line);
}

void SlowQueryLog::WriteLine(const std::string& line) {
  if (file_ == nullptr) return;
  if (file_bytes_ + line.size() + 1 > options_.max_file_bytes) {
    // Rotate: current file becomes `.1` (replacing the previous generation)
    // and a fresh file takes over. One generation bounds disk use at about
    // twice max_file_bytes.
    std::fclose(file_);
    file_ = nullptr;
    const std::string rotated = options_.path + ".1";
    std::remove(rotated.c_str());
    std::rename(options_.path.c_str(), rotated.c_str());
    file_ = std::fopen(options_.path.c_str(), "a");
    file_bytes_ = 0;
    if (file_ == nullptr) return;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  file_bytes_ += line.size() + 1;
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  const uint64_t capacity = ring_.size();
  const uint64_t live = next_ < capacity ? next_ : capacity;
  out.reserve(live);
  for (uint64_t i = next_ - live; i < next_; ++i) {
    out.push_back(ring_[i % capacity]);
  }
  return out;
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

}  // namespace aion::obs
