#include "obs/health.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace aion::obs {

namespace {

uint64_t UnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

std::string HealthReport::ToJson() const {
  std::string out = "{\"healthy\":";
  out.append(healthy ? "true" : "false");
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"unix_millis\":%" PRIu64, unix_millis);
  out.append(buf);
  out.append(",\"checks\":[");
  bool first = true;
  for (const HealthCheck& check : checks) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"").append(check.name).append("\",\"value\":");
    AppendDouble(&out, check.value);
    out.append(",\"threshold\":");
    AppendDouble(&out, check.threshold);
    out.append(",\"ok\":").append(check.ok ? "true" : "false");
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

HealthWatchdog::HealthWatchdog(MetricsRegistry* registry, Options options)
    : registry_(registry),
      options_(options),
      metric_degraded_(registry->gauge("health.degraded")),
      metric_checks_failed_(registry->gauge("health.checks_failed")),
      metric_evaluations_(registry->counter("health.evaluations")) {}

HealthWatchdog::~HealthWatchdog() { Stop(); }

void HealthWatchdog::AddCheck(const std::string& name,
                              std::function<double()> probe, double threshold,
                              Direction direction) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Check& check : checks_) {
    if (check.name == name) {
      check.probe = std::move(probe);
      check.threshold = threshold;
      check.direction = direction;
      return;
    }
  }
  checks_.push_back({name, std::move(probe), threshold, direction});
}

void HealthWatchdog::OnDegraded(
    std::function<void(const HealthReport&)> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_ = std::move(callback);
}

HealthReport HealthWatchdog::Evaluate() {
  HealthReport report;
  report.unix_millis = UnixMillis();
  std::function<void(const HealthReport&)> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t failed = 0;
    for (const Check& check : checks_) {
      HealthCheck result;
      result.name = check.name;
      result.value = check.probe();
      result.threshold = check.threshold;
      result.ok = check.direction == Direction::kAbove
                      ? result.value <= check.threshold
                      : result.value >= check.threshold;
      if (!result.ok) {
        report.healthy = false;
        ++failed;
      }
      report.checks.push_back(std::move(result));
    }
    metric_degraded_->Set(report.healthy ? 0 : 1);
    metric_checks_failed_->Set(failed);
    metric_evaluations_->Add(1);
    if (was_healthy_ && !report.healthy && callback_) fire = callback_;
    was_healthy_ = report.healthy;
  }
  // Fire outside mu_ so the callback may call back into the watchdog (or
  // take long dumping the flight ring) without blocking evaluations.
  if (fire) fire(report);
  return report;
}

void HealthWatchdog::Start() {
  if (running_ || options_.period_millis == 0) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = false;
  }
  evaluator_ = std::thread([this] { EvaluateLoop(); });
  running_ = true;
}

void HealthWatchdog::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  evaluator_.join();
  running_ = false;
}

void HealthWatchdog::EvaluateLoop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_) {
    lock.unlock();
    Evaluate();
    lock.lock();
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.period_millis),
                      [this] { return stop_; });
  }
}

}  // namespace aion::obs
