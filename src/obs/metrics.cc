#include "obs/metrics.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace aion::obs {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, histogram] : histograms_) histogram->Clear();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Summarize();
  }
  return snapshot;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

double Micros(uint64_t nanos) { return static_cast<double>(nanos) / 1000.0; }

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[32];
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, value);
    out.append(buf);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRId64, value);
    out.append(buf);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, summary] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf), ":{\"count\":%" PRIu64, summary.count);
    out.append(buf);
    out.append(",\"mean_us\":");
    AppendDouble(&out, Micros(static_cast<uint64_t>(summary.Mean())));
    out.append(",\"p50_us\":");
    AppendDouble(&out, Micros(summary.p50));
    out.append(",\"p95_us\":");
    AppendDouble(&out, Micros(summary.p95));
    out.append(",\"p99_us\":");
    AppendDouble(&out, Micros(summary.p99));
    out.append(",\"max_us\":");
    AppendDouble(&out, Micros(summary.max));
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "aion_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  char buf[96];
  for (const auto& [name, value] : counters) {
    const std::string p = PrometheusName(name);
    out.append("# TYPE ").append(p).append(" counter\n");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out.append(p).append(buf);
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = PrometheusName(name);
    out.append("# TYPE ").append(p).append(" gauge\n");
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", value);
    out.append(p).append(buf);
  }
  // Histograms expose as real Prometheus histogram families: cumulative
  // `_bucket{le="..."}` samples (power-of-two upper bounds from the atomic
  // histogram, trailing +Inf equals _count), then `_sum` and `_count`.
  // Values stay in the recorded unit (nanoseconds; the instrument names say
  // so).
  for (const auto& [name, summary] : histograms) {
    const std::string p = PrometheusName(name);
    out.append("# TYPE ").append(p).append(" histogram\n");
    for (const util::LatencySummary::Bucket& bucket : summary.buckets) {
      if (bucket.le == ~uint64_t{0}) continue;  // folded into +Inf below
      std::snprintf(buf, sizeof(buf),
                    "_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", bucket.le,
                    bucket.cumulative_count);
      out.append(p).append(buf);
    }
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  summary.count);
    out.append(p).append(buf);
    std::snprintf(buf, sizeof(buf), "_sum %" PRIu64 "\n", summary.sum);
    out.append(p).append(buf);
    std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", summary.count);
    out.append(p).append(buf);
  }
  return out;
}

}  // namespace aion::obs
