// Per-query attribution of store work. A QueryStatsScope installs a
// thread-local accumulator for the duration of one query; the core stores
// (B+Trees, TimeStore replay, GraphStore snapshot cache, PageCache) tick
// into it through the inline helpers below whenever a scope is active on
// the calling thread. When no scope is active a tick is one thread-local
// load plus a branch, so the global counters stay the only cost on paths
// outside PROFILE / slow-query accounting.
//
// Attribution is thread-local by design: work delegated to worker threads
// (e.g. the TimeStore's parallel replay decode) is not attributed to the
// query, so per-query sums are a lower bound of the global counter deltas
// (an invariant the tests pin).
//
// Scopes nest: on destruction an inner scope folds its counts into the
// enclosing scope, so a procedure profiled inside a profiled query
// attributes to both.
#ifndef AION_OBS_QUERY_STATS_H_
#define AION_OBS_QUERY_STATS_H_

#include <cstdint>
#include <string>

namespace aion::obs {

/// Store work attributed to one query (or one operator within it).
struct QueryStats {
  uint64_t bptree_probes = 0;      // B+Tree point/seek/scan entries
  uint64_t records_replayed = 0;   // TimeStore log records decoded
  uint64_t graphstore_hits = 0;    // snapshot-cache hits
  uint64_t graphstore_misses = 0;  // snapshot-cache misses
  uint64_t pagecache_hits = 0;     // resident-frame fetches
  uint64_t pagecache_misses = 0;   // fetches that read from disk

  void Add(const QueryStats& other);
  /// Component-wise `this - since` (callers pass an earlier mark of the
  /// same accumulator, so no underflow).
  QueryStats DeltaSince(const QueryStats& since) const;
  bool IsZero() const;

  /// {"bptree_probes":N,...} — the slow-query-log summary payload.
  std::string ToJson() const;
};

/// RAII: installs a thread-local QueryStats accumulator. The store tick
/// helpers below add into the innermost active scope of their thread.
class QueryStatsScope {
 public:
  QueryStatsScope();
  ~QueryStatsScope();

  QueryStatsScope(const QueryStatsScope&) = delete;
  QueryStatsScope& operator=(const QueryStatsScope&) = delete;

  const QueryStats& stats() const { return stats_; }

  /// Stats accumulated since the previous TakeDelta (or construction) —
  /// slices one query's work into per-operator deltas.
  QueryStats TakeDelta();

  /// The innermost active scope's accumulator on this thread (nullptr when
  /// none). Exposed for the tick helpers and tests.
  static QueryStats* Current();

 private:
  QueryStats stats_;
  QueryStats mark_;  // snapshot at the last TakeDelta
  QueryStatsScope* prev_;
};

// --- store tick points (no-ops without an active scope) -------------------

inline void TickBpTreeProbe() {
  if (QueryStats* s = QueryStatsScope::Current()) ++s->bptree_probes;
}
inline void TickRecordsReplayed(uint64_t n) {
  if (QueryStats* s = QueryStatsScope::Current()) s->records_replayed += n;
}
inline void TickGraphStoreHit() {
  if (QueryStats* s = QueryStatsScope::Current()) ++s->graphstore_hits;
}
inline void TickGraphStoreMiss() {
  if (QueryStats* s = QueryStatsScope::Current()) ++s->graphstore_misses;
}
inline void TickPageCacheHit() {
  if (QueryStats* s = QueryStatsScope::Current()) ++s->pagecache_hits;
}
inline void TickPageCacheMiss() {
  if (QueryStats* s = QueryStatsScope::Current()) ++s->pagecache_misses;
}

}  // namespace aion::obs

#endif  // AION_OBS_QUERY_STATS_H_
