// Flight recorder: a background sampler that snapshots every instrument in
// a MetricsRegistry into a fixed-size time-series ring. Where the registry
// answers "what are the totals now?", the ring answers "what were they over
// the last few minutes?" — enough to reconstruct rates and spot regressions
// after the fact (ingest-to-visible lag spikes, backpressure bursts) without
// an external scraper. The ring is exported as JSON via `CALL dbms.flight()`
// and the HTTP endpoint `/debug/flight`, and can be dumped to disk on demand
// or when the health watchdog flips to degraded.
#ifndef AION_OBS_TIMESERIES_H_
#define AION_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace aion::obs {

/// One ring slot: a full registry snapshot plus when it was taken.
struct FlightSample {
  uint64_t unix_millis = 0;  // wall clock, for correlating with logs
  MetricsSnapshot snapshot;
};

class FlightRecorder {
 public:
  struct Options {
    /// Sampling period. 0 disables the background thread entirely (samples
    /// can still be taken explicitly with SampleNow).
    uint64_t period_millis = 500;
    /// Ring capacity in samples. At the default period, 256 samples cover
    /// ~2 minutes of history for a few hundred KB.
    size_t capacity = 256;
  };

  /// `registry` must outlive the recorder. The recorder registers its own
  /// instruments (`flight.samples`, `flight.sample_nanos`) into the sampled
  /// registry, so sampling cost shows up in the data it records.
  FlightRecorder(MetricsRegistry* registry, Options options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Starts the background sampler (no-op when period_millis == 0 or
  /// already running).
  void Start();

  /// Stops and joins the background sampler. Safe to call repeatedly; the
  /// ring's contents survive.
  void Stop();

  /// Takes one sample synchronously (also used by the background thread).
  /// Deterministic handle for tests and for "snapshot before dump".
  void SampleNow();

  /// Samples currently held (<= capacity).
  size_t size() const;

  /// Oldest-to-newest copy of the ring.
  std::vector<FlightSample> Samples() const;

  /// {"period_millis":..,"capacity":..,"samples":[{"unix_millis":..,
  /// "metrics":{...}},...]} — samples oldest first, each carrying the full
  /// MetricsSnapshot::ToJson() payload.
  std::string ToJson() const;

  /// Writes ToJson() to `path` (truncating). Used for on-demand dumps and
  /// by the degraded-health hook.
  util::Status DumpToFile(const std::string& path) const;

  const Options& options() const { return options_; }

 private:
  void SampleLoop();

  MetricsRegistry* registry_;
  const Options options_;
  Counter* metric_samples_;       // flight.samples
  Histogram* metric_sample_ns_;   // flight.sample_nanos

  mutable std::mutex mu_;         // guards ring_ and next_
  std::vector<FlightSample> ring_;
  size_t next_ = 0;               // total samples taken; ring_[next_ % cap]

  std::mutex wake_mu_;            // guards stop_ for the cv
  std::condition_variable wake_cv_;
  bool stop_ = false;
  std::thread sampler_;
  bool running_ = false;
};

}  // namespace aion::obs

#endif  // AION_OBS_TIMESERIES_H_
