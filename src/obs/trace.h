// Observability: lightweight tracing. AION_TRACE_SPAN("timestore.replay")
// opens an RAII span that, on scope exit, records {name, start, duration,
// thread} into a fixed-capacity ring buffer (the process-wide TraceSink).
// Recording is one short critical section over a preallocated ring — no
// allocation on the hot path once the ring is warm — and can be disabled
// globally, which reduces a span to two steady_clock reads.
//
// A span can additionally feed an obs::Histogram so the same probe drives
// both the trace timeline and the latency distribution in DBMS METRICS.
#ifndef AION_OBS_TRACE_H_
#define AION_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace aion::obs {

struct TraceEvent {
  const char* name = nullptr;  // static string from AION_TRACE_SPAN
  uint64_t start_nanos = 0;    // steady-clock epoch (durations, not wall)
  uint64_t duration_nanos = 0;
  uint64_t thread_id = 0;
};

/// Fixed-capacity ring buffer of completed spans; oldest entries are
/// overwritten. One process-wide instance (Global) so spans from every
/// layer interleave into a single timeline.
class TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static TraceSink& Global();

  explicit TraceSink(size_t capacity = kDefaultCapacity);

  void Record(const TraceEvent& event);

  /// Completed spans, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Spans recorded since construction/Clear (>= ring occupancy).
  uint64_t total_recorded() const;

  void Clear();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t next_ = 0;  // total spans recorded; next slot = next_ % capacity_
};

/// RAII span. Records into TraceSink::Global() when tracing is enabled and
/// into `histogram` (if given) unconditionally.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* histogram = nullptr)
      : name_(name), histogram_(histogram), start_(NowNanos()) {}
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Histogram* histogram_;
  uint64_t start_;
};

}  // namespace aion::obs

#define AION_OBS_CONCAT_INNER_(a, b) a##b
#define AION_OBS_CONCAT_(a, b) AION_OBS_CONCAT_INNER_(a, b)

/// Opens a span covering the rest of the enclosing scope. Optional second
/// argument: an obs::Histogram* that also receives the duration.
#define AION_TRACE_SPAN(...) \
  ::aion::obs::TraceSpan AION_OBS_CONCAT_(aion_trace_span_, \
                                          __LINE__)(__VA_ARGS__)

#endif  // AION_OBS_TRACE_H_
