// Observability: hierarchical tracing. AION_TRACE_SPAN("timestore.replay")
// opens an RAII span that, on scope exit, records {name, start, duration,
// thread, span id, parent span id, query id} into a fixed-capacity ring
// buffer (the process-wide TraceSink). Parentage is implicit: a span's
// parent is whatever span was open on the same thread when it was
// constructed, so the server's per-connection span naturally becomes the
// parent of every query span executed on that connection, and query spans
// parent the store spans underneath. A TraceContext additionally stamps the
// thread's current query id onto every span it covers.
//
// Recording is one short critical section over a preallocated ring — no
// allocation on the hot path once the ring is warm — and can be disabled
// globally (the flag is a std::atomic<bool>, safe to toggle while other
// threads record), which reduces a span to two steady_clock reads.
//
// The sink exports the ring as Chrome trace_event JSON
// (ExportChromeTrace), loadable in chrome://tracing or Perfetto and
// surfaced as `CALL dbms.trace.export()`.
//
// A span can additionally feed an obs::Histogram so the same probe drives
// both the trace timeline and the latency distribution in DBMS METRICS.
#ifndef AION_OBS_TRACE_H_
#define AION_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace aion::obs {

struct TraceEvent {
  const char* name = nullptr;  // static string from AION_TRACE_SPAN
  uint64_t start_nanos = 0;    // steady-clock epoch (durations, not wall)
  uint64_t duration_nanos = 0;
  uint64_t thread_id = 0;
  uint64_t span_id = 0;    // unique per span, > 0
  uint64_t parent_id = 0;  // enclosing span on the same thread; 0 = root
  uint64_t query_id = 0;   // innermost TraceContext; 0 = outside any query
};

/// Fixed-capacity ring buffer of completed spans; oldest entries are
/// overwritten. One process-wide instance (Global) so spans from every
/// layer interleave into a single timeline.
class TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static TraceSink& Global();

  explicit TraceSink(size_t capacity = kDefaultCapacity);

  void Record(const TraceEvent& event);

  /// Completed spans, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// The ring as a Chrome trace_event JSON array — one complete event
  /// (`"ph":"X"`) per span with microsecond ts/dur and
  /// {span_id, parent_id, query_id} in args. Loadable in chrome://tracing
  /// and Perfetto; format documented in docs/observability.md.
  std::string ExportChromeTrace() const;

  /// Spans recorded since construction/Clear (>= ring occupancy).
  uint64_t total_recorded() const;

  void Clear();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  // atomic: tests and operators toggle tracing while ingest/query threads
  // are mid-span; readers must not race the writer.
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t next_ = 0;  // total spans recorded; next slot = next_ % capacity_
};

/// RAII span. Records into TraceSink::Global() when tracing is enabled and
/// into `histogram` (if given) unconditionally. Nested spans on one thread
/// form a parent chain via a thread-local current-span register.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* histogram = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t span_id() const { return id_; }

  /// The innermost open span on this thread (0 = none).
  static uint64_t CurrentSpanId();

 private:
  const char* name_;
  Histogram* histogram_;
  uint64_t start_;
  uint64_t id_;
  uint64_t parent_;  // restored as the thread's current span on destruction
};

/// RAII query-id scope: spans opened on this thread while the context is
/// alive carry `query_id` in their TraceEvent, tying the trace tree to the
/// statement the engine executed. Contexts nest (procedure sub-queries keep
/// their caller's id restored afterwards).
class TraceContext {
 public:
  explicit TraceContext(uint64_t query_id);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  uint64_t query_id() const { return id_; }

  static uint64_t CurrentQueryId();

  /// Process-wide monotonic query-id source (starts at 1).
  static uint64_t NextQueryId();

 private:
  uint64_t id_;
  uint64_t prev_;
};

}  // namespace aion::obs

#define AION_OBS_CONCAT_INNER_(a, b) a##b
#define AION_OBS_CONCAT_(a, b) AION_OBS_CONCAT_INNER_(a, b)

/// Opens a span covering the rest of the enclosing scope. Optional second
/// argument: an obs::Histogram* that also receives the duration.
#define AION_TRACE_SPAN(...) \
  ::aion::obs::TraceSpan AION_OBS_CONCAT_(aion_trace_span_, \
                                          __LINE__)(__VA_ARGS__)

#endif  // AION_OBS_TRACE_H_
