// Observability: a lock-cheap metrics registry shared by every Aion layer.
//
// A MetricsRegistry names three kinds of instruments:
//   * Counter — monotonically increasing event count (relaxed atomic add);
//   * Gauge   — last-written value (watermarks, sizes);
//   * Histogram (util::AtomicLatencyHistogram) — latency distribution in
//     nanoseconds, aggregated across threads without locks.
//
// Lookup by name takes a mutex, so call sites resolve their instruments
// once (at Open/construction time) and keep the returned pointer; the hot
// path is then a relaxed atomic operation. Instrument pointers stay valid
// for the registry's lifetime.
//
// Each AionStore owns one registry and threads it down into its stores and
// indexes; the query engine and server record into the same registry, so
// `DBMS METRICS`, the METRICS protocol message, and ToJson() all report one
// coherent per-store breakdown.
#ifndef AION_OBS_METRICS_H_
#define AION_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/histogram.h"

namespace aion::obs {

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (watermarks, queue depths, sizes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

using Histogram = util::AtomicLatencyHistogram;

/// Point-in-time copy of every instrument in a registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, util::LatencySummary> histograms;

  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  int64_t gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
  /// Samples recorded into the named histogram (0 when absent); convenient
  /// for asserting "this code path ran" in tests.
  uint64_t histogram_count(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? 0 : it->second.count;
  }

  /// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  /// "mean_us":..,"p50_us":..,"p95_us":..,"p99_us":..,"max_us":..}}}
  std::string ToJson() const;

  /// Prometheus text exposition (version 0.0.4): counters and gauges as
  /// single samples, histograms as real histogram families — cumulative
  /// `_bucket{le="..."}` samples with power-of-two upper bounds, a trailing
  /// `le="+Inf"` bucket equal to `_count`, then `_sum`/`_count`. Instrument
  /// names go through PrometheusName().
  std::string ToPrometheus() const;
};

/// Prometheus name mangling: "aion_" prefix, then every character outside
/// [a-zA-Z0-9_] becomes '_' (so "query.parse_nanos" ->
/// "aion_query_parse_nanos"). Deterministic, shared with tests.
std::string PrometheusName(const std::string& name);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. The pointer stays valid for the
  /// registry's lifetime; resolve once, then record lock-free.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }
  std::string ToPrometheus() const { return Snapshot().ToPrometheus(); }

  /// Zeroes every registered instrument in place. Resolved instrument
  /// pointers stay valid — values reset, nothing is deallocated — so hot
  /// paths that cached a Counter*/Histogram* keep recording. Lets benches
  /// and tests measure phases instead of process lifetimes.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Steady-clock nanoseconds (monotonic; for durations, not wall time).
uint64_t NowNanos();

/// RAII latency probe: records elapsed nanoseconds into `histogram` (if any)
/// on destruction.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram)
      : histogram_(histogram), start_(NowNanos()) {}
  ~ScopedLatency() {
    if (histogram_ != nullptr) histogram_->Record(NowNanos() - start_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_;
};

}  // namespace aion::obs

#endif  // AION_OBS_METRICS_H_
