#include "obs/timeseries.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace aion::obs {

namespace {

uint64_t UnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FlightRecorder::FlightRecorder(MetricsRegistry* registry, Options options)
    : registry_(registry),
      options_(options),
      metric_samples_(registry->counter("flight.samples")),
      metric_sample_ns_(registry->histogram("flight.sample_nanos")) {
  ring_.reserve(options_.capacity);
}

FlightRecorder::~FlightRecorder() { Stop(); }

void FlightRecorder::Start() {
  if (running_ || options_.period_millis == 0) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = false;
  }
  sampler_ = std::thread([this] { SampleLoop(); });
  running_ = true;
}

void FlightRecorder::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  sampler_.join();
  running_ = false;
}

void FlightRecorder::SampleLoop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_) {
    // Sample first so short-lived recorders still capture one point, then
    // sleep. wait_for wakes early on Stop().
    lock.unlock();
    SampleNow();
    lock.lock();
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.period_millis),
                      [this] { return stop_; });
  }
}

void FlightRecorder::SampleNow() {
  const uint64_t start = NowNanos();
  FlightSample sample;
  sample.unix_millis = UnixMillis();
  sample.snapshot = registry_->Snapshot();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < options_.capacity) {
      ring_.push_back(std::move(sample));
    } else {
      ring_[next_ % options_.capacity] = std::move(sample);
    }
    ++next_;
  }
  metric_samples_->Add(1);
  metric_sample_ns_->Record(NowNanos() - start);
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<FlightSample> FlightRecorder::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightSample> out;
  out.reserve(ring_.size());
  // Once the ring wraps, the oldest sample sits at next_ % capacity.
  const size_t start = ring_.size() < options_.capacity
                           ? 0
                           : next_ % options_.capacity;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightSample> samples = Samples();
  std::string out = "{\"period_millis\":";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, options_.period_millis);
  out.append(buf);
  std::snprintf(buf, sizeof(buf), ",\"capacity\":%zu", options_.capacity);
  out.append(buf);
  out.append(",\"samples\":[");
  bool first = true;
  for (const FlightSample& sample : samples) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"unix_millis\":%" PRIu64,
                  sample.unix_millis);
    out.append(buf);
    out.append(",\"metrics\":");
    out.append(sample.snapshot.ToJson());
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

util::Status FlightRecorder::DumpToFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IOError("flight dump: cannot open " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) {
    return util::Status::IOError("flight dump: short write to " + path);
  }
  return util::Status::OK();
}

}  // namespace aion::obs
