// Slow-query log: queries whose wall time crosses a configurable threshold
// are recorded as JSON-lines through a small rotating writer, and kept in a
// bounded in-memory ring surfaced via `CALL dbms.slowlog()`. Disabled by
// default (threshold 0): Record() is then a no-op, so the log costs nothing
// until a deployment opts in (AionStore::Options::slow_query_threshold_nanos).
//
// Record schema (one JSON object per line, documented in
// docs/observability.md):
//   {"unix_millis":..,"query_id":..,"session_id":..,"nanos":..,
//    "store":"..","query":"..","summary":{...}}
// `query_id` matches the TraceContext id carried by dbms.traces() spans and
// workload-capture records, so slow entries join against both.
#ifndef AION_OBS_SLOWLOG_H_
#define AION_OBS_SLOWLOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace aion::obs {

class SlowQueryLog {
 public:
  struct Options {
    /// Queries at or above this wall time are logged; 0 disables the log.
    uint64_t threshold_nanos = 0;
    /// JSON-lines file; empty keeps records in memory only.
    std::string path;
    /// When the file exceeds this, it is rotated to `path + ".1"` (one
    /// generation kept).
    size_t max_file_bytes = 4u << 20;
    /// Entries retained for CALL dbms.slowlog() (oldest dropped).
    size_t ring_capacity = 128;
  };

  struct Entry {
    uint64_t unix_millis = 0;  // wall-clock capture time
    uint64_t query_id = 0;     // obs::TraceContext id (0 when untracked)
    uint64_t session_id = 0;   // connection session (0 = embedded)
    uint64_t nanos = 0;        // query wall time
    std::string store;         // "lineage" / "timestore" / "latest" / "-"
    std::string query;         // statement text
    std::string summary_json;  // QueryStats::ToJson() ("{}" when absent)
  };

  explicit SlowQueryLog(const Options& options);
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  bool enabled() const { return options_.threshold_nanos > 0; }
  uint64_t threshold_nanos() const { return options_.threshold_nanos; }

  /// Appends one record (ring + file). No-op when the log is disabled or
  /// `entry.nanos` is below the threshold, so callers may record
  /// unconditionally.
  void Record(Entry entry);

  /// Retained entries, oldest first.
  std::vector<Entry> Recent() const;

  /// Records accepted since construction (>= ring occupancy).
  uint64_t total_recorded() const;

  /// One record as a JSON line (no trailing newline). Exposed for tests.
  static std::string ToJsonLine(const Entry& entry);

 private:
  void WriteLine(const std::string& line);  // callers hold mu_

  const Options options_;
  mutable std::mutex mu_;
  std::vector<Entry> ring_;
  uint64_t next_ = 0;  // total records; next slot = next_ % capacity
  std::FILE* file_ = nullptr;
  size_t file_bytes_ = 0;
};

}  // namespace aion::obs

#endif  // AION_OBS_SLOWLOG_H_
