// Workload capture: an opt-in rotating JSON-lines record of every completed
// statement — text, params, store route, timing, row count — modeled on the
// slow-query log writer but unconditional (no threshold): the point is a
// faithful trace of the workload, replayable as a regression benchmark via
// bench_replay. Disabled by default (empty path): Record() is then a no-op.
//
// Record schema (one JSON object per line, documented in
// docs/observability.md):
//   {"unix_millis":..,"query_id":..,"session_id":..,"nanos":..,"rows":..,
//    "ok":true,"store":"..","query":"..","params":{}}
//
// `params` is reserved for future parameterized statements and is always
// `{}` today; replay tooling must tolerate (and preserve) it.
#ifndef AION_OBS_CAPTURE_H_
#define AION_OBS_CAPTURE_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace aion::obs {

class WorkloadCapture {
 public:
  struct Options {
    /// JSON-lines file; empty disables capture entirely.
    std::string path;
    /// When the file exceeds this, it is rotated to `path + ".1"` (one
    /// generation kept).
    size_t max_file_bytes = 64u << 20;
  };

  struct Record {
    uint64_t unix_millis = 0;  // wall-clock completion time
    uint64_t query_id = 0;
    uint64_t session_id = 0;
    uint64_t nanos = 0;  // statement wall time
    uint64_t rows = 0;
    bool ok = true;
    std::string route;  // "lineage" / "timestore" / "latest" / "-"
    std::string text;   // statement text
  };

  explicit WorkloadCapture(const Options& options);
  ~WorkloadCapture();

  WorkloadCapture(const WorkloadCapture&) = delete;
  WorkloadCapture& operator=(const WorkloadCapture&) = delete;

  bool enabled() const { return !options_.path.empty(); }

  /// Appends one record (unix_millis filled from the wall clock when 0).
  /// No-op when disabled, so callers may record unconditionally.
  void Append(Record record);

  /// Records accepted since construction.
  uint64_t total_recorded() const;

  /// One record as a JSON line (no trailing newline).
  static std::string ToJsonLine(const Record& record);

  /// Parses a line produced by ToJsonLine. Not a general JSON parser — it
  /// understands exactly the capture schema (and ignores unknown keys).
  static util::StatusOr<Record> ParseJsonLine(const std::string& line);

  /// Reads every record from a capture file, oldest first.
  static util::StatusOr<std::vector<Record>> ReadFile(const std::string& path);

 private:
  void WriteLine(const std::string& line);  // callers hold mu_

  const Options options_;
  mutable std::mutex mu_;
  uint64_t total_ = 0;
  std::FILE* file_ = nullptr;
  size_t file_bytes_ = 0;
};

}  // namespace aion::obs

#endif  // AION_OBS_CAPTURE_H_
