#include "obs/query_stats.h"

#include <cinttypes>
#include <cstdio>

namespace aion::obs {

namespace {
thread_local QueryStatsScope* tls_scope = nullptr;
}  // namespace

void QueryStats::Add(const QueryStats& other) {
  bptree_probes += other.bptree_probes;
  records_replayed += other.records_replayed;
  graphstore_hits += other.graphstore_hits;
  graphstore_misses += other.graphstore_misses;
  pagecache_hits += other.pagecache_hits;
  pagecache_misses += other.pagecache_misses;
}

QueryStats QueryStats::DeltaSince(const QueryStats& since) const {
  QueryStats d;
  d.bptree_probes = bptree_probes - since.bptree_probes;
  d.records_replayed = records_replayed - since.records_replayed;
  d.graphstore_hits = graphstore_hits - since.graphstore_hits;
  d.graphstore_misses = graphstore_misses - since.graphstore_misses;
  d.pagecache_hits = pagecache_hits - since.pagecache_hits;
  d.pagecache_misses = pagecache_misses - since.pagecache_misses;
  return d;
}

bool QueryStats::IsZero() const {
  return bptree_probes == 0 && records_replayed == 0 &&
         graphstore_hits == 0 && graphstore_misses == 0 &&
         pagecache_hits == 0 && pagecache_misses == 0;
}

std::string QueryStats::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"bptree_probes\":%" PRIu64
                ",\"records_replayed\":%" PRIu64
                ",\"graphstore_hits\":%" PRIu64
                ",\"graphstore_misses\":%" PRIu64
                ",\"pagecache_hits\":%" PRIu64
                ",\"pagecache_misses\":%" PRIu64 "}",
                bptree_probes, records_replayed, graphstore_hits,
                graphstore_misses, pagecache_hits, pagecache_misses);
  return buf;
}

QueryStatsScope::QueryStatsScope() : prev_(tls_scope) { tls_scope = this; }

QueryStatsScope::~QueryStatsScope() {
  tls_scope = prev_;
  if (prev_ != nullptr) prev_->stats_.Add(stats_);
}

QueryStats QueryStatsScope::TakeDelta() {
  QueryStats delta = stats_.DeltaSince(mark_);
  mark_ = stats_;
  return delta;
}

QueryStats* QueryStatsScope::Current() {
  return tls_scope == nullptr ? nullptr : &tls_scope->stats_;
}

}  // namespace aion::obs
