// Health watchdog: turns raw instruments into a single healthy/degraded
// verdict. Each check pairs a probe (a callable that measures the current
// value — refreshing the backing gauge so clients see measured data, not
// client-side derivations) with a threshold and a direction; the watchdog
// evaluates all checks on demand (`CALL dbms.health()`, GET /healthz) or on
// a background period, maintains the `health.degraded` gauge, and fires a
// callback on the healthy-to-degraded transition (AionStore uses it to dump
// the flight recorder, preserving the minutes leading up to the fault).
#ifndef AION_OBS_HEALTH_H_
#define AION_OBS_HEALTH_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace aion::obs {

/// Result of one check at one evaluation.
struct HealthCheck {
  std::string name;
  double value = 0;
  double threshold = 0;
  bool ok = true;
};

/// Result of evaluating every registered check.
struct HealthReport {
  bool healthy = true;
  uint64_t unix_millis = 0;
  std::vector<HealthCheck> checks;

  /// {"healthy":true,"unix_millis":..,"checks":[{"name":..,"value":..,
  /// "threshold":..,"ok":..},...]}
  std::string ToJson() const;
};

class HealthWatchdog {
 public:
  /// A check fails when the probed value crosses its threshold in the
  /// stated direction.
  enum class Direction {
    kAbove,  // fail when value > threshold (lags, ages, latencies, rates)
    kBelow,  // fail when value < threshold (hit rates)
  };

  struct Options {
    /// Background evaluation period. 0 disables the background thread;
    /// Evaluate() still works on demand.
    uint64_t period_millis = 1000;
  };

  /// `registry` must outlive the watchdog; it receives `health.degraded`,
  /// `health.checks_failed`, and `health.evaluations`.
  HealthWatchdog(MetricsRegistry* registry, Options options);
  ~HealthWatchdog();

  HealthWatchdog(const HealthWatchdog&) = delete;
  HealthWatchdog& operator=(const HealthWatchdog&) = delete;

  /// Registers (or replaces, by name) a check. `probe` is called on every
  /// evaluation from the evaluating thread; it must be safe to call
  /// concurrently with the system under observation and should refresh any
  /// gauge it derives from so exports stay consistent with health output.
  void AddCheck(const std::string& name, std::function<double()> probe,
                double threshold, Direction direction);

  /// Callback fired once per healthy-to-degraded transition (from the
  /// evaluating thread). Replace-only; pass nullptr to clear.
  void OnDegraded(std::function<void(const HealthReport&)> callback);

  /// Runs every probe and returns the verdict. Updates health.* metrics and
  /// fires the degraded callback on transition. Thread-safe.
  HealthReport Evaluate();

  /// Starts/stops the background evaluation loop (no-op when
  /// period_millis == 0 or already in the requested state).
  void Start();
  void Stop();

 private:
  struct Check {
    std::string name;
    std::function<double()> probe;
    double threshold = 0;
    Direction direction = Direction::kAbove;
  };

  void EvaluateLoop();

  MetricsRegistry* registry_;
  const Options options_;
  Gauge* metric_degraded_;        // health.degraded (0 or 1)
  Gauge* metric_checks_failed_;   // health.checks_failed
  Counter* metric_evaluations_;   // health.evaluations

  std::mutex mu_;                 // guards checks_, callback_, was_healthy_
  std::vector<Check> checks_;
  std::function<void(const HealthReport&)> callback_;
  bool was_healthy_ = true;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  std::thread evaluator_;
  bool running_ = false;
};

}  // namespace aion::obs

#endif  // AION_OBS_HEALTH_H_
