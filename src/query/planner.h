// Query planning (Sec 5.1): Aion parses temporal Cypher into an operator
// plan and, based on cardinality estimation, selects between the two
// temporal stores — LineageStore when less than 30% of the graph is
// accessed, TimeStore (full snapshot construction) otherwise.
#ifndef AION_QUERY_PLANNER_H_
#define AION_QUERY_PLANNER_H_

#include "core/aion.h"
#include "query/ast.h"

namespace aion::query {

struct PlanInfo {
  /// Shape of the access, per the taxonomy of Sec 3.
  enum class Access {
    kPointHistory,  // single entity over a time range
    kPointLookup,   // single entity at one instant
    kExpand,        // id-anchored n-hop neighbourhood
    kGlobalScan,    // label/property scan or unanchored pattern
  };
  Access access = Access::kGlobalScan;
  /// Total pattern hops.
  uint32_t hops = 0;
  /// Anchored by WHERE id(x) = ... on the first pattern node.
  bool anchored_by_id = false;
  graph::NodeId anchor_id = graph::kInvalidNodeId;
  /// Estimated fraction of the graph touched (cardinality estimation).
  double estimated_fraction = 1.0;
  /// The chosen temporal store for non-latest queries.
  core::AionStore::StoreChoice store =
      core::AionStore::StoreChoice::kTimeStore;
};

/// Classifies a read statement and picks the store. `aion` may be null
/// (latest-only execution), in which case the choice defaults to TimeStore.
PlanInfo PlanStatement(const Statement& stmt, const core::AionStore* aion);

}  // namespace aion::query

#endif  // AION_QUERY_PLANNER_H_
