// Query planning (Sec 5.1): Aion parses temporal Cypher into an operator
// plan and, based on cardinality estimation, selects between the two
// temporal stores — LineageStore when less than 30% of the graph is
// accessed, TimeStore (full snapshot construction) otherwise.
#ifndef AION_QUERY_PLANNER_H_
#define AION_QUERY_PLANNER_H_

#include "core/aion.h"
#include "query/ast.h"

namespace aion::query {

struct PlanInfo {
  /// Shape of the access, per the taxonomy of Sec 3.
  enum class Access {
    kPointHistory,  // single entity over a time range
    kPointLookup,   // single entity at one instant
    kExpand,        // id-anchored n-hop neighbourhood
    kGlobalScan,    // label/property scan or unanchored pattern
  };
  Access access = Access::kGlobalScan;
  /// Total pattern hops.
  uint32_t hops = 0;
  /// Anchored by WHERE id(x) = ... on the first pattern node.
  bool anchored_by_id = false;
  graph::NodeId anchor_id = graph::kInvalidNodeId;
  /// Estimated fraction of the graph touched (cardinality estimation).
  double estimated_fraction = 1.0;
  /// The chosen temporal store for non-latest queries.
  core::AionStore::StoreChoice store =
      core::AionStore::StoreChoice::kTimeStore;
};

/// Classifies a read statement and picks the store. `aion` may be null
/// (latest-only execution), in which case the choice defaults to TimeStore.
PlanInfo PlanStatement(const Statement& stmt, const core::AionStore* aion);

/// One row of an EXPLAIN/PROFILE plan rendering: a pre-order walk of the
/// operator tree (root first), with `depth` giving the nesting level.
struct PlanOperator {
  std::string op;        // "ProduceResults", "Filter", "NodeByIdSeek", ...
  int depth = 0;         // 0 = root
  std::string detail;    // operator-specific annotation
  std::string store;     // "lineage" / "timestore" / "latest" / "-"
  std::string temporal;  // rendered FOR SYSTEM_TIME clause ("latest", ...)
};

/// The temporal clause as text: "latest", "AS OF 5", "FROM 1 TO 9",
/// "BETWEEN 1 AND 9", "CONTAINED IN (1, 9)".
std::string DescribeTimeSpec(const TimeSpec& time);

/// The store the engine would route this statement to, mirroring
/// ExecuteMatch's dispatch (including the LineageStore -> TimeStore fallback
/// when the lineage cascade has not caught up to the window). Writes pin to
/// "latest"; CALL reports "-".
std::string DescribeStoreChoice(const Statement& stmt, const PlanInfo& plan,
                                const core::AionStore* aion);

/// Renders the plan as an operator tree for EXPLAIN/PROFILE. Never executes
/// the statement.
std::vector<PlanOperator> DescribePlan(const Statement& stmt,
                                       const PlanInfo& plan,
                                       const core::AionStore* aion);

}  // namespace aion::query

#endif  // AION_QUERY_PLANNER_H_
