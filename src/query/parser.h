// Recursive-descent parser for the temporal Cypher subset. Stands in for
// the javaCC-generated frontend of the paper (Sec 5.1).
#ifndef AION_QUERY_PARSER_H_
#define AION_QUERY_PARSER_H_

#include <string>

#include "query/ast.h"
#include "util/status.h"

namespace aion::query {

/// Parses one statement. Returns InvalidArgument with a message pointing at
/// the offending token on syntax errors.
util::StatusOr<Statement> Parse(const std::string& text);

}  // namespace aion::query

#endif  // AION_QUERY_PARSER_H_
