// QueryEngine: parses, plans, and executes temporal Cypher against the host
// database (latest graph) and Aion (historical graphs) — stage 3 of Fig 4.
// Reads route through the planner's store choice; writes run as host
// transactions (flowing back into Aion via the commit listener); CALL
// dispatches to registered temporal procedures (Sec 5.1).
#ifndef AION_QUERY_ENGINE_H_
#define AION_QUERY_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/aion.h"
#include "obs/capture.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/workload_registry.h"
#include "query/ast.h"
#include "query/exec.h"
#include "query/planner.h"
#include "query/value.h"
#include "txn/graphdb.h"
#include "util/status.h"

namespace aion::query {

class QueryEngine;

/// A temporal procedure: name -> handler(arguments) -> table.
using ProcedureFn = std::function<util::StatusOr<QueryResult>(
    QueryEngine&, const std::vector<Literal>&)>;

class QueryEngine {
 public:
  /// `db` is required; `aion` may be null (non-temporal engine, used to
  /// measure the baseline in the ingestion experiments).
  QueryEngine(txn::GraphDatabase* db, core::AionStore* aion);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Parses and executes one statement.
  util::StatusOr<QueryResult> Execute(const std::string& text);
  util::StatusOr<QueryResult> Execute(const Statement& stmt);

  /// Registers a procedure under `name` (dots allowed). Replaces existing.
  void RegisterProcedure(const std::string& name, ProcedureFn fn);

  txn::GraphDatabase* db() { return db_; }
  core::AionStore* aion() { return aion_; }

  /// The registry the engine records its "query.*" instruments into:
  /// Aion's own registry when attached (one coherent per-store breakdown),
  /// else a private one. Valid for the engine's lifetime.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// The workload registry every Execute(text) statement registers with
  /// (never null): Aion's when attached, else a private one. The server
  /// cancels through it on Stop(); dbms.queries()/dbms.sessions() and
  /// GET /debug/queries read it.
  obs::WorkloadRegistry* workload() const { return workload_; }

  /// The workload capture (owned by aion_; null without one or when
  /// Options::capture_path is empty — check enabled() before relying on
  /// output).
  obs::WorkloadCapture* capture() const { return capture_; }

  /// Morsel-dispatch tuning (see query/exec.h). Not thread-safe against
  /// concurrent Execute calls — set before serving traffic (tests and
  /// benchmarks sweep max_workers through this).
  void set_exec_options(const ExecOptions& options) { exec_options_ = options; }
  const ExecOptions& exec_options() const { return exec_options_; }

 private:
  struct Binding {
    std::map<std::string, Value> values;
  };

  util::StatusOr<QueryResult> ExecuteDispatch(const Statement& stmt);
  /// EXPLAIN: renders the plan tree as rows without executing the statement.
  util::StatusOr<QueryResult> ExecuteExplain(const Statement& stmt);
  /// PROFILE: executes the statement and returns per-operator rows, store
  /// probes (attributed via obs::QueryStatsScope), and wall nanos.
  util::StatusOr<QueryResult> ExecuteProfile(const Statement& stmt);
  util::StatusOr<QueryResult> ExecuteMatch(const Statement& stmt);
  util::StatusOr<QueryResult> ExecuteCreate(const Statement& stmt);
  util::StatusOr<QueryResult> ExecuteMatchSet(const Statement& stmt);
  util::StatusOr<QueryResult> ExecuteMatchDelete(const Statement& stmt);
  util::StatusOr<QueryResult> ExecuteCall(const Statement& stmt);

  /// Point-history plan (Fig 1a): one node's versions over the window.
  util::StatusOr<QueryResult> ExecutePointHistory(const Statement& stmt,
                                                  const PlanInfo& plan);

  /// Pattern matching against a single graph view.
  util::StatusOr<std::vector<Binding>> MatchPatterns(
      const Statement& stmt, const graph::GraphView& view);
  util::Status MatchPath(const PathPattern& path, const graph::GraphView& view,
                         const Statement& stmt, std::vector<Binding>* out);
  /// Depth-first extension of one seed node along `path`; the per-morsel
  /// unit of work (runs on pool workers — must only touch `out` and
  /// const engine state).
  util::Status ExpandSeed(const PathPattern& path,
                          const graph::GraphView& view, const Statement& stmt,
                          graph::Node seed, const MorselDriver& driver,
                          std::vector<Binding>* out) const;
  bool NodeMatches(const NodePattern& pattern, const graph::Node& node) const;
  bool PredicatesHold(const Statement& stmt, const Binding& binding) const;

  util::StatusOr<QueryResult> Project(const Statement& stmt,
                                      const std::vector<Binding>& bindings);

  /// Resolves the graph view for an instant (AsOf via Aion, Latest via db).
  util::StatusOr<std::shared_ptr<const graph::GraphView>> ViewAt(
      const TimeSpec& time);

  void RegisterBuiltinProcedures();

  txn::GraphDatabase* db_;
  core::AionStore* aion_;
  std::map<std::string, ProcedureFn> procedures_;
  obs::SlowQueryLog* slow_log_ = nullptr;  // owned by aion_; null without one
  std::unique_ptr<obs::WorkloadRegistry> own_workload_;  // when aion_ == null
  obs::WorkloadRegistry* workload_ = nullptr;
  obs::WorkloadCapture* capture_ = nullptr;  // owned by aion_; may be null

  // Observability: per-stage timings plus one StoreChoice outcome per MATCH.
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;  // when aion_ == nullptr
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* metric_statements_ = nullptr;
  obs::Counter* metric_failures_ = nullptr;
  obs::Counter* metric_store_lineage_ = nullptr;
  obs::Counter* metric_store_timestore_ = nullptr;
  obs::Counter* metric_store_latest_ = nullptr;
  obs::Histogram* metric_parse_ = nullptr;
  obs::Histogram* metric_plan_ = nullptr;
  obs::Histogram* metric_execute_ = nullptr;

  // Morsel-driven parallel dispatch (query/exec.h): scan/expand/history
  // operators fan out onto Aion's read pool (null pool = sequential).
  ExecOptions exec_options_;
  ExecInstruments exec_instruments_;
  util::ThreadPool* exec_pool_ = nullptr;
};

}  // namespace aion::query

#endif  // AION_QUERY_ENGINE_H_
