#include "query/exec.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "obs/query_stats.h"

namespace aion::query {

using util::Status;
using util::StatusOr;

MorselDriver::MorselDriver(util::ThreadPool* pool, const ExecOptions& options,
                           const ExecInstruments& instruments)
    : pool_(pool), options_(options), instruments_(instruments) {
  obs::WorkloadRegistry::RunningQuery* running =
      obs::ActiveQueryScope::Current();
  cancel_flag_ = running != nullptr ? &running->cancel : nullptr;
}

namespace {

/// Refreshes exec.parallel_fraction_permille from the two mode counters.
void UpdateParallelFraction(const ExecInstruments& instruments) {
  if (instruments.parallel_fraction == nullptr ||
      instruments.parallel_queries == nullptr ||
      instruments.sequential_queries == nullptr) {
    return;
  }
  const uint64_t parallel = instruments.parallel_queries->value();
  const uint64_t total = parallel + instruments.sequential_queries->value();
  if (total == 0) return;
  instruments.parallel_fraction->Set(
      static_cast<int64_t>(parallel * 1000 / total));
}

}  // namespace

StatusOr<MorselDriver::Outcome> MorselDriver::Run(size_t n,
                                                  const MorselBody& body) {
  Outcome outcome;
  if (n == 0) return outcome;
  const size_t morsel_size = std::max<size_t>(options_.morsel_size, 1);
  const size_t morsels = (n + morsel_size - 1) / morsel_size;
  outcome.morsels = morsels;
  size_t width = options_.max_workers != 0
                     ? options_.max_workers
                     : (pool_ != nullptr ? pool_->num_threads() + 1 : 1);
  width = std::min(width, morsels);
  const bool parallel =
      pool_ != nullptr && width > 1 && n >= options_.min_parallel_items;

  if (instruments_.morsels_dispatched != nullptr) {
    instruments_.morsels_dispatched->Add(morsels);
  }
  if (!parallel) {
    if (instruments_.sequential_queries != nullptr) {
      instruments_.sequential_queries->Add();
    }
    UpdateParallelFraction(instruments_);
    outcome.workers = 1;
    for (size_t m = 0; m < morsels; ++m) {
      if (cancelled()) return Status::Cancelled("query killed");
      const size_t begin = m * morsel_size;
      AION_RETURN_IF_ERROR(
          body(m, begin, std::min(n, begin + morsel_size)));
    }
    return outcome;
  }

  outcome.parallel = true;
  if (instruments_.parallel_queries != nullptr) {
    instruments_.parallel_queries->Add();
  }
  UpdateParallelFraction(instruments_);

  // Shared dispatch state. Stack-allocated: Run() always waits for every
  // helper task before returning, so references stay valid.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> busy_nanos{0};
    std::atomic<size_t> touched{0};
    std::mutex mu;
    Status first_error = Status::OK();
    obs::QueryStats worker_stats;  // folded by the coordinator at merge
    size_t outstanding = 0;
    std::condition_variable done;
  } shared;

  // Morsel claim loop. The coordinator's store ticks flow into its ambient
  // QueryStatsScope directly; helpers run each morsel under a private scope
  // (a pool worker has no enclosing scope to fold into) and publish the
  // accumulated stats for the coordinator to re-attribute.
  auto work = [&](bool coordinator) {
    const uint64_t start = obs::NowNanos();
    bool touched = false;
    obs::QueryStats local;
    while (!cancelled()) {
      const size_t m = shared.next.fetch_add(1, std::memory_order_relaxed);
      if (m >= morsels) break;
      touched = true;
      const size_t begin = m * morsel_size;
      const size_t end = std::min(n, begin + morsel_size);
      Status status = Status::OK();
      if (coordinator) {
        status = body(m, begin, end);
      } else {
        obs::QueryStatsScope scope;
        status = body(m, begin, end);
        local.Add(scope.stats());
      }
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (shared.first_error.ok()) shared.first_error = std::move(status);
        stop_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (touched) {
      shared.touched.fetch_add(1, std::memory_order_relaxed);
      shared.busy_nanos.fetch_add(obs::NowNanos() - start,
                                  std::memory_order_relaxed);
    }
    if (!local.IsZero()) {
      std::lock_guard<std::mutex> lock(shared.mu);
      shared.worker_stats.Add(local);
    }
  };

  const size_t helpers = width - 1;
  shared.outstanding = helpers;
  for (size_t i = 0; i < helpers; ++i) {
    pool_->Submit([&work, &shared] {
      work(false);
      std::lock_guard<std::mutex> lock(shared.mu);
      if (--shared.outstanding == 0) shared.done.notify_all();
    });
  }
  work(true);
  {
    std::unique_lock<std::mutex> lock(shared.mu);
    shared.done.wait(lock, [&shared] { return shared.outstanding == 0; });
  }

  // Re-attribute helper store work to the dispatching statement before the
  // enclosing ProfileStage closes.
  if (obs::QueryStats* current = obs::QueryStatsScope::Current()) {
    current->Add(shared.worker_stats);
  }
  outcome.workers = shared.touched.load(std::memory_order_relaxed);
  outcome.worker_busy_nanos =
      shared.busy_nanos.load(std::memory_order_relaxed);

  if (!shared.first_error.ok()) return shared.first_error;
  if (cancelled()) return Status::Cancelled("query killed");
  return outcome;
}

}  // namespace aion::query
