#include "query/planner.h"

#include <algorithm>
#include <string>
#include <vector>

namespace aion::query {

PlanInfo PlanStatement(const Statement& stmt, const core::AionStore* aion) {
  PlanInfo plan;
  if (stmt.patterns.empty()) return plan;
  const PathPattern& path = stmt.patterns.front();

  for (const RelPattern& rel : path.rels) plan.hops += rel.hops;

  // Anchoring: WHERE id(first-node-var) = N.
  const std::string& first_var = path.nodes.front().variable;
  for (const Predicate& pred : stmt.predicates) {
    if (pred.kind == Predicate::Kind::kIdEquals &&
        pred.variable == first_var && !first_var.empty()) {
      plan.anchored_by_id = true;
      plan.anchor_id = static_cast<graph::NodeId>(pred.literal.int_value);
    }
  }

  const bool range_query = stmt.time.kind == TimeSpec::Kind::kBetween ||
                           stmt.time.kind == TimeSpec::Kind::kFromTo ||
                           stmt.time.kind == TimeSpec::Kind::kContainedIn;

  if (plan.anchored_by_id && plan.hops == 0) {
    plan.access = range_query ? PlanInfo::Access::kPointHistory
                              : PlanInfo::Access::kPointLookup;
    plan.estimated_fraction = 0.0;
  } else if (plan.anchored_by_id) {
    plan.access = PlanInfo::Access::kExpand;
    plan.estimated_fraction =
        aion != nullptr ? aion->stats().EstimateExpandFraction(plan.hops)
                        : 1.0;
  } else {
    plan.access = PlanInfo::Access::kGlobalScan;
    // Label selectivity bounds the scan fraction; an unlabeled scan touches
    // everything.
    const std::string& label = path.nodes.front().label;
    plan.estimated_fraction =
        aion != nullptr && !label.empty()
            ? aion->stats().EstimateLabelFraction(label)
            : 1.0;
  }

  if (aion != nullptr) {
    plan.store = plan.access == PlanInfo::Access::kGlobalScan
                     ? core::AionStore::StoreChoice::kTimeStore
                 : plan.access == PlanInfo::Access::kExpand
                     ? aion->ChooseStoreForExpand(plan.hops)
                     : core::AionStore::StoreChoice::kLineageStore;
  }
  return plan;
}

std::string DescribeTimeSpec(const TimeSpec& time) {
  switch (time.kind) {
    case TimeSpec::Kind::kLatest:
      return "latest";
    case TimeSpec::Kind::kAsOf:
      return "AS OF " + std::to_string(time.a);
    case TimeSpec::Kind::kFromTo:
      return "FROM " + std::to_string(time.a) + " TO " +
             std::to_string(time.b);
    case TimeSpec::Kind::kBetween:
      return "BETWEEN " + std::to_string(time.a) + " AND " +
             std::to_string(time.b);
    case TimeSpec::Kind::kContainedIn:
      return "CONTAINED IN (" + std::to_string(time.a) + ", " +
             std::to_string(time.b) + ")";
  }
  return "latest";
}

std::string DescribeStoreChoice(const Statement& stmt, const PlanInfo& plan,
                                const core::AionStore* aion) {
  switch (stmt.kind) {
    case Statement::Kind::kCreate:
    case Statement::Kind::kMatchSet:
    case Statement::Kind::kMatchDelete:
      return "latest";  // writes run against the host's current graph
    case Statement::Kind::kCall:
      return "-";
    case Statement::Kind::kMatch:
      break;
  }
  if (stmt.time.kind == TimeSpec::Kind::kLatest) return "latest";
  if (aion == nullptr) return "latest";
  // Point plans route through AionStore::GetNode: LineageStore when the
  // cascade covers the window, TimeStore fallback otherwise (same test the
  // engine applies at execution time).
  const bool point_plan =
      plan.access == PlanInfo::Access::kPointHistory ||
      (plan.access == PlanInfo::Access::kPointLookup &&
       stmt.time.kind == TimeSpec::Kind::kAsOf);
  if (point_plan) {
    graph::Timestamp start = 0, end = 0;
    stmt.time.ToWindow(&start, &end);
    return aion->LineageCanServe(std::max(start, end)) ? "lineage"
                                                       : "timestore";
  }
  return "timestore";  // snapshot construction / replay
}

std::vector<PlanOperator> DescribePlan(const Statement& stmt,
                                       const PlanInfo& plan,
                                       const core::AionStore* aion) {
  const std::string store = DescribeStoreChoice(stmt, plan, aion);
  const std::string temporal = DescribeTimeSpec(stmt.time);
  std::vector<PlanOperator> ops;
  int depth = 0;
  auto push = [&](std::string op, std::string detail) {
    ops.push_back({std::move(op), depth++, std::move(detail), store, temporal});
  };

  std::string columns;
  for (const ReturnItem& item : stmt.returns) {
    if (!columns.empty()) columns += ", ";
    columns += item.ColumnName();
  }
  push("ProduceResults", columns);

  switch (stmt.kind) {
    case Statement::Kind::kCreate: {
      size_t nodes = 0, rels = 0;
      for (const PathPattern& path : stmt.patterns) {
        nodes += path.nodes.size();
        rels += path.rels.size();
      }
      push("Create", std::to_string(nodes) + " nodes, " +
                         std::to_string(rels) + " rels");
      return ops;
    }
    case Statement::Kind::kCall:
      push("ProcedureCall", stmt.procedure);
      return ops;
    case Statement::Kind::kMatchSet:
      push("SetProperties", std::to_string(stmt.sets.size()) + " assignments");
      break;
    case Statement::Kind::kMatchDelete: {
      std::string vars;
      for (const std::string& var : stmt.deletes) {
        if (!vars.empty()) vars += ", ";
        vars += var;
      }
      push(stmt.detach ? "DetachDelete" : "Delete", vars);
      break;
    }
    case Statement::Kind::kMatch:
      break;
  }

  if (!stmt.predicates.empty()) {
    push("Filter", std::to_string(stmt.predicates.size()) + " predicates");
  }
  if (plan.hops > 0) {
    push("ExpandAll", "hops=" + std::to_string(plan.hops));
  }

  const bool point_plan =
      stmt.kind == Statement::Kind::kMatch && aion != nullptr &&
      (plan.access == PlanInfo::Access::kPointHistory ||
       (plan.access == PlanInfo::Access::kPointLookup &&
        stmt.time.kind == TimeSpec::Kind::kAsOf));
  if (point_plan) {
    push("NodeHistoryScan", "node=" + std::to_string(plan.anchor_id));
    return ops;
  }
  if (plan.anchored_by_id) {
    push("NodeByIdSeek", "id=" + std::to_string(plan.anchor_id));
  } else {
    const std::string label = stmt.patterns.empty()
                                  ? std::string()
                                  : stmt.patterns.front().nodes.front().label;
    push("NodeScan", label.empty() ? "all nodes" : "label=" + label);
  }
  if (stmt.kind == Statement::Kind::kMatch &&
      stmt.time.kind != TimeSpec::Kind::kLatest) {
    // Historical snapshots materialize below the scan: checkpoint + replay.
    push("SnapshotLoad", "t=" + std::to_string(stmt.time.a));
  }
  return ops;
}

}  // namespace aion::query
