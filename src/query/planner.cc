#include "query/planner.h"

namespace aion::query {

PlanInfo PlanStatement(const Statement& stmt, const core::AionStore* aion) {
  PlanInfo plan;
  if (stmt.patterns.empty()) return plan;
  const PathPattern& path = stmt.patterns.front();

  for (const RelPattern& rel : path.rels) plan.hops += rel.hops;

  // Anchoring: WHERE id(first-node-var) = N.
  const std::string& first_var = path.nodes.front().variable;
  for (const Predicate& pred : stmt.predicates) {
    if (pred.kind == Predicate::Kind::kIdEquals &&
        pred.variable == first_var && !first_var.empty()) {
      plan.anchored_by_id = true;
      plan.anchor_id = static_cast<graph::NodeId>(pred.literal.int_value);
    }
  }

  const bool range_query = stmt.time.kind == TimeSpec::Kind::kBetween ||
                           stmt.time.kind == TimeSpec::Kind::kFromTo ||
                           stmt.time.kind == TimeSpec::Kind::kContainedIn;

  if (plan.anchored_by_id && plan.hops == 0) {
    plan.access = range_query ? PlanInfo::Access::kPointHistory
                              : PlanInfo::Access::kPointLookup;
    plan.estimated_fraction = 0.0;
  } else if (plan.anchored_by_id) {
    plan.access = PlanInfo::Access::kExpand;
    plan.estimated_fraction =
        aion != nullptr ? aion->stats().EstimateExpandFraction(plan.hops)
                        : 1.0;
  } else {
    plan.access = PlanInfo::Access::kGlobalScan;
    // Label selectivity bounds the scan fraction; an unlabeled scan touches
    // everything.
    const std::string& label = path.nodes.front().label;
    plan.estimated_fraction =
        aion != nullptr && !label.empty()
            ? aion->stats().EstimateLabelFraction(label)
            : 1.0;
  }

  if (aion != nullptr) {
    plan.store = plan.access == PlanInfo::Access::kGlobalScan
                     ? core::AionStore::StoreChoice::kTimeStore
                 : plan.access == PlanInfo::Access::kExpand
                     ? aion->ChooseStoreForExpand(plan.hops)
                     : core::AionStore::StoreChoice::kLineageStore;
  }
  return plan;
}

}  // namespace aion::query
