// Runtime values flowing through query execution and over the wire
// protocol: scalars, graph entities, and entity versions.
#ifndef AION_QUERY_VALUE_H_
#define AION_QUERY_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "graph/entity.h"

namespace aion::query {

/// A query result cell.
class Value {
 public:
  using Variant = std::variant<std::monostate, bool, int64_t, double,
                               std::string, graph::Node, graph::Relationship>;

  Value() = default;
  Value(bool v) : value_(v) {}                      // NOLINT
  Value(int64_t v) : value_(v) {}                   // NOLINT
  Value(double v) : value_(v) {}                    // NOLINT
  Value(std::string v) : value_(std::move(v)) {}    // NOLINT
  Value(graph::Node v) : value_(std::move(v)) {}    // NOLINT
  Value(graph::Relationship v) : value_(std::move(v)) {}  // NOLINT

  static Value FromProperty(const graph::PropertyValue& p);

  bool is_null() const { return value_.index() == 0; }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_node() const { return std::holds_alternative<graph::Node>(value_); }
  bool is_relationship() const {
    return std::holds_alternative<graph::Relationship>(value_);
  }

  bool AsBool() const { return std::get<bool>(value_); }
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  const std::string& AsString() const {
    return std::get<std::string>(value_);
  }
  const graph::Node& AsNode() const { return std::get<graph::Node>(value_); }
  const graph::Relationship& AsRelationship() const {
    return std::get<graph::Relationship>(value_);
  }

  /// Numeric coercion (0 for non-numerics).
  double ToNumber() const;

  bool operator==(const Value& other) const { return value_ == other.value_; }

  std::string ToString() const;

 private:
  Variant value_;
};

/// A tabular query result: column names plus rows of cells.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  size_t NumRows() const { return rows.size(); }
  std::string ToString() const;
};

}  // namespace aion::query

#endif  // AION_QUERY_VALUE_H_
