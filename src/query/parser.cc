#include "query/parser.h"

#include "query/lexer.h"

namespace aion::query {

using util::Status;
using util::StatusOr;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement() {
    Statement stmt;
    if (MatchKeyword("EXPLAIN")) {
      stmt.mode = Statement::Mode::kExplain;
    } else if (MatchKeyword("PROFILE")) {
      stmt.mode = Statement::Mode::kProfile;
    }
    if (PeekKeyword("USE")) {
      AION_RETURN_IF_ERROR(ParseUseClause(&stmt));
    }
    if (PeekKeyword("MATCH")) {
      AION_RETURN_IF_ERROR(ParseMatch(&stmt));
    } else if (PeekKeyword("CREATE")) {
      AION_RETURN_IF_ERROR(ParseCreate(&stmt));
    } else if (PeekKeyword("CALL")) {
      AION_RETURN_IF_ERROR(ParseCall(&stmt));
    } else {
      return Error("expected MATCH, CREATE, or CALL");
    }
    if (!AtEnd()) return Error("trailing input after statement");
    return stmt;
  }

 private:
  // --- token helpers -----------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }
  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    return Peek(ahead).type == TokenType::kKeyword && Peek(ahead).text == kw;
  }
  bool MatchKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " (near offset " +
                                   std::to_string(Peek().position) + ")");
  }
  Status Expect(TokenType type, const std::string& what) {
    if (!Match(type)) return Error("expected " + what);
    return Status::OK();
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) return Error("expected " + kw);
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier(const std::string& what) {
    if (!Check(TokenType::kIdentifier)) return Error("expected " + what);
    return Advance().text;
  }

  /// Accepts an identifier or a keyword in name position (property keys and
  /// labels may collide with reserved words, e.g. `n.id`).
  StatusOr<std::string> ExpectName(const std::string& what) {
    if (Check(TokenType::kIdentifier)) return Advance().text;
    if (Check(TokenType::kKeyword)) return Advance().raw;
    return Error("expected " + what);
  }

  StatusOr<graph::Timestamp> ExpectTimestamp() {
    if (!Check(TokenType::kInteger)) return Error("expected timestamp");
    return static_cast<graph::Timestamp>(Advance().int_value);
  }

  StatusOr<Literal> ParseLiteral() {
    Literal lit;
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        lit.kind = Literal::Kind::kInt;
        lit.int_value = t.int_value;
        Advance();
        return lit;
      case TokenType::kFloat:
        lit.kind = Literal::Kind::kDouble;
        lit.double_value = t.float_value;
        Advance();
        return lit;
      case TokenType::kString:
        lit.kind = Literal::Kind::kString;
        lit.string_value = t.text;
        Advance();
        return lit;
      case TokenType::kKeyword:
        if (t.text == "TRUE" || t.text == "FALSE") {
          lit.kind = Literal::Kind::kBool;
          lit.bool_value = t.text == "TRUE";
          Advance();
          return lit;
        }
        if (t.text == "NULL") {
          Advance();
          return lit;
        }
        break;
      default:
        break;
    }
    return Error("expected literal");
  }

  // --- clauses -----------------------------------------------------------

  Status ParseUseClause(Statement* stmt) {
    AION_RETURN_IF_ERROR(ExpectKeyword("USE"));
    // Database name, e.g. GDB; currently informational.
    AION_RETURN_IF_ERROR(ExpectIdentifier("database name").status());
    AION_RETURN_IF_ERROR(ExpectKeyword("FOR"));
    AION_RETURN_IF_ERROR(ExpectKeyword("SYSTEM_TIME"));
    if (MatchKeyword("AS")) {
      AION_RETURN_IF_ERROR(ExpectKeyword("OF"));
      AION_ASSIGN_OR_RETURN(stmt->time.a, ExpectTimestamp());
      stmt->time.kind = TimeSpec::Kind::kAsOf;
      return Status::OK();
    }
    if (MatchKeyword("FROM")) {
      AION_ASSIGN_OR_RETURN(stmt->time.a, ExpectTimestamp());
      AION_RETURN_IF_ERROR(ExpectKeyword("TO"));
      AION_ASSIGN_OR_RETURN(stmt->time.b, ExpectTimestamp());
      stmt->time.kind = TimeSpec::Kind::kFromTo;
      return Status::OK();
    }
    if (MatchKeyword("BETWEEN")) {
      AION_ASSIGN_OR_RETURN(stmt->time.a, ExpectTimestamp());
      AION_RETURN_IF_ERROR(ExpectKeyword("AND"));
      AION_ASSIGN_OR_RETURN(stmt->time.b, ExpectTimestamp());
      stmt->time.kind = TimeSpec::Kind::kBetween;
      return Status::OK();
    }
    if (MatchKeyword("CONTAINED")) {
      AION_RETURN_IF_ERROR(ExpectKeyword("IN"));
      AION_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      AION_ASSIGN_OR_RETURN(stmt->time.a, ExpectTimestamp());
      AION_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
      AION_ASSIGN_OR_RETURN(stmt->time.b, ExpectTimestamp());
      AION_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      stmt->time.kind = TimeSpec::Kind::kContainedIn;
      return Status::OK();
    }
    return Error("expected AS OF / FROM / BETWEEN / CONTAINED IN");
  }

  StatusOr<NodePattern> ParseNodePattern() {
    NodePattern node;
    AION_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (Check(TokenType::kIdentifier)) node.variable = Advance().text;
    if (Match(TokenType::kColon)) {
      AION_ASSIGN_OR_RETURN(node.label, ExpectName("label"));
    }
    if (Match(TokenType::kLBrace)) {
      while (!Check(TokenType::kRBrace)) {
        AION_ASSIGN_OR_RETURN(std::string key,
                              ExpectName("property key"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kColon, "':'"));
        AION_ASSIGN_OR_RETURN(Literal value, ParseLiteral());
        node.properties.emplace_back(std::move(key), std::move(value));
        if (!Match(TokenType::kComma)) break;
      }
      AION_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "'}'"));
    }
    AION_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return node;
  }

  /// Parses the relationship between two node patterns; `direction_in` is
  /// true when the pattern started with '<-'.
  StatusOr<RelPattern> ParseRelPattern() {
    RelPattern rel;
    bool left = false;
    if (Match(TokenType::kArrowLeft)) {
      left = true;
    } else if (!Match(TokenType::kDash)) {
      return Error("expected relationship pattern");
    }
    if (Match(TokenType::kLBracket)) {
      if (Check(TokenType::kIdentifier)) rel.variable = Advance().text;
      if (Match(TokenType::kColon)) {
        AION_ASSIGN_OR_RETURN(rel.type,
                              ExpectIdentifier("relationship type"));
      }
      if (Match(TokenType::kStar)) {
        if (!Check(TokenType::kInteger)) {
          return Error("expected hop count after '*'");
        }
        rel.hops = static_cast<uint32_t>(Advance().int_value);
        if (rel.hops == 0) return Error("hop count must be positive");
      }
      AION_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'"));
    }
    if (Match(TokenType::kArrowRight)) {
      if (left) return Error("bidirectional arrows not supported");
      rel.direction = RelPattern::Direction::kRight;
    } else if (Match(TokenType::kDash)) {
      rel.direction = left ? RelPattern::Direction::kLeft
                           : RelPattern::Direction::kUndirected;
    } else {
      return Error("expected '->' or '-'");
    }
    return rel;
  }

  StatusOr<PathPattern> ParsePathPattern() {
    PathPattern path;
    AION_ASSIGN_OR_RETURN(NodePattern first, ParseNodePattern());
    path.nodes.push_back(std::move(first));
    while (Check(TokenType::kDash) || Check(TokenType::kArrowLeft)) {
      AION_ASSIGN_OR_RETURN(RelPattern rel, ParseRelPattern());
      AION_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
      path.rels.push_back(std::move(rel));
      path.nodes.push_back(std::move(node));
    }
    return path;
  }

  Status ParsePatternList(Statement* stmt) {
    do {
      AION_ASSIGN_OR_RETURN(PathPattern path, ParsePathPattern());
      stmt->patterns.push_back(std::move(path));
    } while (Match(TokenType::kComma));
    return Status::OK();
  }

  StatusOr<Predicate::Op> ParseCompareOp() {
    if (Match(TokenType::kEq)) return Predicate::Op::kEq;
    if (Match(TokenType::kNeq)) return Predicate::Op::kNeq;
    if (Match(TokenType::kLte)) return Predicate::Op::kLte;
    if (Match(TokenType::kLt)) return Predicate::Op::kLt;
    if (Match(TokenType::kGte)) return Predicate::Op::kGte;
    if (Match(TokenType::kGt)) return Predicate::Op::kGt;
    return Error("expected comparison operator");
  }

  Status ParseWhere(Statement* stmt) {
    AION_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    do {
      Predicate pred;
      if (MatchKeyword("ID")) {
        AION_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        AION_ASSIGN_OR_RETURN(pred.variable, ExpectIdentifier("variable"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
        // $param placeholders accept a literal in this implementation.
        if (Match(TokenType::kDollar)) {
          AION_RETURN_IF_ERROR(ExpectName("parameter name").status());
          return Error("positional parameters are not supported; inline the id");
        }
        if (!Check(TokenType::kInteger)) return Error("expected id literal");
        pred.kind = Predicate::Kind::kIdEquals;
        pred.literal.kind = Literal::Kind::kInt;
        pred.literal.int_value = Advance().int_value;
      } else if (MatchKeyword("APPLICATION_TIME")) {
        AION_RETURN_IF_ERROR(ExpectKeyword("CONTAINED"));
        AION_RETURN_IF_ERROR(ExpectKeyword("IN"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        AION_ASSIGN_OR_RETURN(pred.app_a, ExpectTimestamp());
        AION_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
        AION_ASSIGN_OR_RETURN(pred.app_b, ExpectTimestamp());
        AION_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        pred.kind = Predicate::Kind::kApplicationTime;
      } else if (Check(TokenType::kIdentifier)) {
        pred.variable = Advance().text;
        AION_RETURN_IF_ERROR(Expect(TokenType::kDot, "'.'"));
        AION_ASSIGN_OR_RETURN(pred.key, ExpectName("property key"));
        AION_ASSIGN_OR_RETURN(pred.op, ParseCompareOp());
        AION_ASSIGN_OR_RETURN(pred.literal, ParseLiteral());
        pred.kind = Predicate::Kind::kPropertyCompare;
      } else {
        return Error("expected predicate");
      }
      stmt->predicates.push_back(std::move(pred));
    } while (MatchKeyword("AND"));
    return Status::OK();
  }

  Status ParseReturn(Statement* stmt) {
    AION_RETURN_IF_ERROR(ExpectKeyword("RETURN"));
    do {
      ReturnItem item;
      if (MatchKeyword("COUNT")) {
        AION_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kStar, "'*'"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        item.kind = ReturnItem::Kind::kCountStar;
      } else if (MatchKeyword("ID")) {
        AION_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        AION_ASSIGN_OR_RETURN(item.variable, ExpectIdentifier("variable"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        item.kind = ReturnItem::Kind::kId;
      } else {
        AION_ASSIGN_OR_RETURN(item.variable, ExpectIdentifier("variable"));
        if (Match(TokenType::kDot)) {
          AION_ASSIGN_OR_RETURN(item.key, ExpectName("property key"));
          item.kind = ReturnItem::Kind::kProperty;
        } else {
          item.kind = ReturnItem::Kind::kVariable;
        }
      }
      if (MatchKeyword("AS")) {
        AION_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      }
      stmt->returns.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("LIMIT")) {
      if (!Check(TokenType::kInteger)) return Error("expected limit");
      stmt->limit = static_cast<size_t>(Advance().int_value);
    }
    return Status::OK();
  }

  Status ParseMatch(Statement* stmt) {
    AION_RETURN_IF_ERROR(ExpectKeyword("MATCH"));
    AION_RETURN_IF_ERROR(ParsePatternList(stmt));
    if (PeekKeyword("WHERE")) AION_RETURN_IF_ERROR(ParseWhere(stmt));
    if (PeekKeyword("SET")) {
      AION_RETURN_IF_ERROR(ExpectKeyword("SET"));
      stmt->kind = Statement::Kind::kMatchSet;
      do {
        SetClause set;
        AION_ASSIGN_OR_RETURN(set.variable, ExpectIdentifier("variable"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kDot, "'.'"));
        AION_ASSIGN_OR_RETURN(set.key, ExpectName("property key"));
        AION_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
        AION_ASSIGN_OR_RETURN(set.literal, ParseLiteral());
        stmt->sets.push_back(std::move(set));
      } while (Match(TokenType::kComma));
      if (PeekKeyword("RETURN")) AION_RETURN_IF_ERROR(ParseReturn(stmt));
      return Status::OK();
    }
    if (PeekKeyword("DETACH") || PeekKeyword("DELETE")) {
      stmt->detach = MatchKeyword("DETACH");
      AION_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
      stmt->kind = Statement::Kind::kMatchDelete;
      do {
        AION_ASSIGN_OR_RETURN(std::string var,
                              ExpectIdentifier("variable"));
        stmt->deletes.push_back(std::move(var));
      } while (Match(TokenType::kComma));
      return Status::OK();
    }
    stmt->kind = Statement::Kind::kMatch;
    AION_RETURN_IF_ERROR(ParseReturn(stmt));
    return Status::OK();
  }

  Status ParseCreate(Statement* stmt) {
    AION_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    stmt->kind = Statement::Kind::kCreate;
    AION_RETURN_IF_ERROR(ParsePatternList(stmt));
    if (PeekKeyword("RETURN")) AION_RETURN_IF_ERROR(ParseReturn(stmt));
    return Status::OK();
  }

  Status ParseCall(Statement* stmt) {
    AION_RETURN_IF_ERROR(ExpectKeyword("CALL"));
    stmt->kind = Statement::Kind::kCall;
    AION_ASSIGN_OR_RETURN(std::string name,
                          ExpectIdentifier("procedure name"));
    while (Match(TokenType::kDot)) {
      AION_ASSIGN_OR_RETURN(std::string part,
                            ExpectIdentifier("procedure name part"));
      name += "." + part;
    }
    stmt->procedure = std::move(name);
    AION_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (!Check(TokenType::kRParen)) {
      do {
        AION_ASSIGN_OR_RETURN(Literal arg, ParseLiteral());
        stmt->arguments.push_back(std::move(arg));
      } while (Match(TokenType::kComma));
    }
    AION_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (MatchKeyword("YIELD")) {
      do {
        AION_ASSIGN_OR_RETURN(std::string col,
                              ExpectIdentifier("yield column"));
        stmt->yields.push_back(std::move(col));
      } while (Match(TokenType::kComma));
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Statement> Parse(const std::string& text) {
  AION_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace aion::query
