// Tokenizer for the temporal Cypher subset (Sec 3, Fig 1). Keywords are
// case-insensitive, identifiers and strings case-sensitive.
#ifndef AION_QUERY_LEXER_H_
#define AION_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace aion::query {

enum class TokenType {
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  kKeyword,   // normalized upper-case in `text`
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kLBrace,    // {
  kRBrace,    // }
  kColon,
  kComma,
  kDot,
  kDash,       // -
  kArrowRight, // ->
  kArrowLeft,  // <-
  kStar,
  kEq,
  kNeq,   // <>
  kLt,
  kLte,
  kGt,
  kGte,
  kPlus,
  kDollar,  // $param
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/keyword/string payload (keywords upper)
  std::string raw;    // original spelling (keywords only)
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset for error messages
};

/// Tokenizes `input`. Fails with InvalidArgument on malformed input.
util::StatusOr<std::vector<Token>> Tokenize(const std::string& input);

/// True when `word` (upper-cased) is a reserved keyword.
bool IsKeyword(const std::string& upper_word);

}  // namespace aion::query

#endif  // AION_QUERY_LEXER_H_
