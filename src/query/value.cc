#include "query/value.h"

namespace aion::query {

Value Value::FromProperty(const graph::PropertyValue& p) {
  switch (p.type()) {
    case graph::PropertyType::kBool:
      return Value(p.AsBool());
    case graph::PropertyType::kInt:
      return Value(p.AsInt());
    case graph::PropertyType::kDouble:
      return Value(p.AsDouble());
    case graph::PropertyType::kString:
      return Value(p.AsString());
    default:
      // Arrays and null render through their property ToString.
      if (p.is_null()) return Value();
      return Value(p.ToString());
  }
}

double Value::ToNumber() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDouble();
  if (is_bool()) return AsBool() ? 1 : 0;
  return 0;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return std::to_string(AsDouble());
  if (is_string()) return AsString();
  if (is_node()) {
    const graph::Node& n = AsNode();
    std::string out = "(" + std::to_string(n.id);
    for (const std::string& l : n.labels) out += ":" + l;
    if (!n.props.empty()) {
      out += " {";
      bool first = true;
      for (const auto& [k, v] : n.props) {
        if (!first) out += ", ";
        out += k + ": " + v.ToString();
        first = false;
      }
      out += "}";
    }
    return out + ")";
  }
  const graph::Relationship& r = AsRelationship();
  return "[" + std::to_string(r.id) + ":" + r.type + " " +
         std::to_string(r.src) + "->" + std::to_string(r.tgt) + "]";
}

std::string QueryResult::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out += " | ";
    out += columns[i];
  }
  out += "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace aion::query
