#include "query/procedures.h"

#include <string>
#include <vector>

#include "algo/incremental.h"
#include "algo/temporal_paths.h"
#include "obs/trace.h"
#include "obs/workload_registry.h"
#include "query/engine.h"

namespace aion::query {

using graph::Timestamp;
using util::Status;
using util::StatusOr;

namespace {

Status RequireArgs(const std::vector<Literal>& args, size_t n,
                   const std::string& name) {
  if (args.size() != n) {
    return Status::InvalidArgument(name + " expects " + std::to_string(n) +
                                   " arguments");
  }
  return Status::OK();
}

StatusOr<int64_t> IntArg(const std::vector<Literal>& args, size_t i) {
  if (args[i].kind != Literal::Kind::kInt) {
    return Status::InvalidArgument("argument " + std::to_string(i + 1) +
                                   " must be an integer");
  }
  return args[i].int_value;
}

StatusOr<std::string> StringArg(const std::vector<Literal>& args, size_t i) {
  if (args[i].kind != Literal::Kind::kString) {
    return Status::InvalidArgument("argument " + std::to_string(i + 1) +
                                   " must be a string");
  }
  return args[i].string_value;
}

Status RequireAion(QueryEngine& engine) {
  if (engine.aion() == nullptr) {
    return Status::FailedPrecondition("Aion is not attached to this engine");
  }
  return Status::OK();
}

StatusOr<graph::Direction> DirectionArg(const std::vector<Literal>& args,
                                        size_t i) {
  AION_ASSIGN_OR_RETURN(std::string dir, StringArg(args, i));
  if (dir == "out" || dir == "outgoing") return graph::Direction::kOutgoing;
  if (dir == "in" || dir == "incoming") return graph::Direction::kIncoming;
  if (dir == "both") return graph::Direction::kBoth;
  return Status::InvalidArgument("direction must be out/in/both");
}

StatusOr<QueryResult> NodeHistory(QueryEngine& engine,
                                  const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 3, "aion.nodeHistory"));
  AION_ASSIGN_OR_RETURN(int64_t id, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t start, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(int64_t end, IntArg(args, 2));
  AION_ASSIGN_OR_RETURN(
      std::vector<graph::NodeVersion> versions,
      engine.aion()->GetNode(static_cast<graph::NodeId>(id),
                             static_cast<Timestamp>(start),
                             static_cast<Timestamp>(end)));
  QueryResult result;
  result.columns = {"ts_start", "ts_end", "node"};
  for (graph::NodeVersion& v : versions) {
    result.rows.push_back({Value(static_cast<int64_t>(v.interval.start)),
                           Value(static_cast<int64_t>(v.interval.end)),
                           Value(std::move(v.entity))});
  }
  return result;
}

StatusOr<QueryResult> Expand(QueryEngine& engine,
                             const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 4, "aion.expand"));
  AION_ASSIGN_OR_RETURN(int64_t id, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(graph::Direction direction, DirectionArg(args, 1));
  AION_ASSIGN_OR_RETURN(int64_t hops, IntArg(args, 2));
  AION_ASSIGN_OR_RETURN(int64_t t, IntArg(args, 3));
  AION_ASSIGN_OR_RETURN(
      auto levels,
      engine.aion()->Expand(static_cast<graph::NodeId>(id), direction,
                            static_cast<uint32_t>(hops),
                            static_cast<Timestamp>(t)));
  QueryResult result;
  result.columns = {"hop", "node_id"};
  for (size_t hop = 0; hop < levels.size(); ++hop) {
    for (const graph::Node& node : levels[hop]) {
      result.rows.push_back({Value(static_cast<int64_t>(hop + 1)),
                             Value(static_cast<int64_t>(node.id))});
    }
  }
  return result;
}

StatusOr<QueryResult> Relationships(QueryEngine& engine,
                                    const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 4, "aion.relationships"));
  AION_ASSIGN_OR_RETURN(int64_t id, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(graph::Direction direction, DirectionArg(args, 1));
  AION_ASSIGN_OR_RETURN(int64_t start, IntArg(args, 2));
  AION_ASSIGN_OR_RETURN(int64_t end, IntArg(args, 3));
  AION_ASSIGN_OR_RETURN(
      auto histories,
      engine.aion()->GetRelationships(static_cast<graph::NodeId>(id),
                                      direction,
                                      static_cast<Timestamp>(start),
                                      static_cast<Timestamp>(end)));
  QueryResult result;
  result.columns = {"rel_id", "ts_start", "ts_end", "relationship"};
  for (auto& history : histories) {
    for (graph::RelationshipVersion& v : history) {
      result.rows.push_back(
          {Value(static_cast<int64_t>(v.entity.id)),
           Value(static_cast<int64_t>(v.interval.start)),
           Value(static_cast<int64_t>(v.interval.end)),
           Value(std::move(v.entity))});
    }
  }
  return result;
}

StatusOr<QueryResult> Diff(QueryEngine& engine,
                           const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 2, "aion.diff"));
  AION_ASSIGN_OR_RETURN(int64_t start, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t end, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(
      std::vector<graph::GraphUpdate> diff,
      engine.aion()->GetDiff(static_cast<Timestamp>(start),
                             static_cast<Timestamp>(end)));
  QueryResult result;
  result.columns = {"ts", "op", "id"};
  for (const graph::GraphUpdate& u : diff) {
    result.rows.push_back({Value(static_cast<int64_t>(u.ts)),
                           Value(u.ToString()),
                           Value(static_cast<int64_t>(u.id))});
  }
  return result;
}

StatusOr<QueryResult> DiffCount(QueryEngine& engine,
                                const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 2, "aion.diffCount"));
  AION_ASSIGN_OR_RETURN(int64_t start, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t end, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(
      std::vector<graph::GraphUpdate> diff,
      engine.aion()->GetDiff(static_cast<Timestamp>(start),
                             static_cast<Timestamp>(end)));
  QueryResult result;
  result.columns = {"updates"};
  result.rows.push_back({Value(static_cast<int64_t>(diff.size()))});
  return result;
}

StatusOr<QueryResult> GraphStats(QueryEngine& engine,
                                 const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 1, "aion.graphStats"));
  AION_ASSIGN_OR_RETURN(int64_t t, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(auto view,
                        engine.aion()->GetGraphAt(static_cast<Timestamp>(t)));
  QueryResult result;
  result.columns = {"nodes", "relationships"};
  result.rows.push_back({Value(static_cast<int64_t>(view->NumNodes())),
                         Value(static_cast<int64_t>(view->NumRelationships()))});
  return result;
}

StatusOr<QueryResult> Window(QueryEngine& engine,
                             const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 2, "aion.window"));
  AION_ASSIGN_OR_RETURN(int64_t start, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t end, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(auto window,
                        engine.aion()->GetWindow(
                            static_cast<Timestamp>(start),
                            static_cast<Timestamp>(end)));
  QueryResult result;
  result.columns = {"nodes", "relationships"};
  result.rows.push_back(
      {Value(static_cast<int64_t>(window->NumNodes())),
       Value(static_cast<int64_t>(window->NumRelationships()))});
  return result;
}

// --- incremental procedures (Sec 5.2: "incremental algorithms are
// implemented as temporal procedures that materialize intermediate results
// and call the getDiff method between iterations") -----------------------

StatusOr<QueryResult> IncrementalAvg(QueryEngine& engine,
                                     const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 4, "aion.incremental.avg"));
  AION_ASSIGN_OR_RETURN(std::string key, StringArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t start, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(int64_t end, IntArg(args, 2));
  AION_ASSIGN_OR_RETURN(int64_t step, IntArg(args, 3));
  if (step <= 0) return Status::InvalidArgument("step must be positive");

  algo::IncrementalAverage avg(key);
  // Seed with everything at ts <= start; each step then advances the state
  // from "at t" to "at next", i.e. the half-open window [t + 1, next + 1).
  AION_ASSIGN_OR_RETURN(auto seed, engine.aion()->GetDiff(
                                       0, static_cast<Timestamp>(start) + 1));
  avg.ApplyDiff(seed);
  QueryResult result;
  result.columns = {"t", "avg", "count"};
  for (int64_t t = start; t < end; t += step) {
    if (obs::CancellationRequested()) return Status::Cancelled("query killed");
    const int64_t next = std::min<int64_t>(t + step, end);
    AION_ASSIGN_OR_RETURN(auto diff, engine.aion()->GetDiff(
                                         static_cast<Timestamp>(t) + 1,
                                         static_cast<Timestamp>(next) + 1));
    avg.ApplyDiff(diff);
    result.rows.push_back({Value(next), Value(avg.Average()),
                           Value(static_cast<int64_t>(avg.count()))});
  }
  return result;
}

StatusOr<QueryResult> IncrementalBfsProc(QueryEngine& engine,
                                         const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 4, "aion.incremental.bfs"));
  AION_ASSIGN_OR_RETURN(int64_t source, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t start, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(int64_t end, IntArg(args, 2));
  AION_ASSIGN_OR_RETURN(int64_t step, IntArg(args, 3));
  if (step <= 0) return Status::InvalidArgument("step must be positive");

  AION_ASSIGN_OR_RETURN(auto graph, engine.aion()->MaterializeGraphAt(
                                        static_cast<Timestamp>(start)));
  algo::IncrementalBfs bfs(static_cast<graph::NodeId>(source));
  bfs.Recompute(*graph);
  QueryResult result;
  result.columns = {"t", "reached"};
  auto count_reached = [&bfs]() {
    int64_t reached = 0;
    for (uint32_t level : bfs.levels()) {
      if (level != algo::kUnreachable) ++reached;
    }
    return reached;
  };
  result.rows.push_back({Value(start), Value(count_reached())});
  for (int64_t t = start; t < end; t += step) {
    if (obs::CancellationRequested()) return Status::Cancelled("query killed");
    const int64_t next = std::min<int64_t>(t + step, end);
    // State-at-t -> state-at-next: half-open [t + 1, next + 1).
    AION_ASSIGN_OR_RETURN(auto diff, engine.aion()->GetDiff(
                                         static_cast<Timestamp>(t) + 1,
                                         static_cast<Timestamp>(next) + 1));
    AION_RETURN_IF_ERROR(graph->ApplyAll(diff));
    bfs.ApplyDiff(*graph, diff);
    result.rows.push_back({Value(next), Value(count_reached())});
  }
  return result;
}

StatusOr<QueryResult> IncrementalPageRankProc(
    QueryEngine& engine, const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  if (args.size() != 3 && args.size() != 4) {
    return Status::InvalidArgument(
        "aion.incremental.pagerank expects (start, end, step [, epsilon])");
  }
  AION_ASSIGN_OR_RETURN(int64_t start, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t end, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(int64_t step, IntArg(args, 2));
  algo::PageRankOptions pr_options;
  if (args.size() == 4) {
    if (args[3].kind != Literal::Kind::kDouble) {
      return Status::InvalidArgument("epsilon must be a float literal");
    }
    pr_options.epsilon = args[3].double_value;
  }
  if (step <= 0) return Status::InvalidArgument("step must be positive");
  AION_ASSIGN_OR_RETURN(auto graph, engine.aion()->MaterializeGraphAt(
                                        static_cast<Timestamp>(start)));
  algo::IncrementalPageRank pr(pr_options);
  pr.Recompute(*graph);
  QueryResult result;
  result.columns = {"t", "iterations", "pushes"};
  result.rows.push_back(
      {Value(start), Value(static_cast<int64_t>(pr.last_iterations())),
       Value(int64_t{0})});
  for (int64_t t = start; t < end; t += step) {
    if (obs::CancellationRequested()) return Status::Cancelled("query killed");
    const int64_t next = std::min<int64_t>(t + step, end);
    AION_ASSIGN_OR_RETURN(auto diff, engine.aion()->GetDiff(
                                         static_cast<Timestamp>(t) + 1,
                                         static_cast<Timestamp>(next) + 1));
    AION_RETURN_IF_ERROR(graph->ApplyAll(diff));
    pr.ApplyDiff(*graph, diff);
    result.rows.push_back(
        {Value(next), Value(static_cast<int64_t>(pr.last_iterations())),
         Value(static_cast<int64_t>(pr.last_pushes()))});
  }
  return result;
}

StatusOr<QueryResult> EarliestArrivalProc(QueryEngine& engine,
                                          const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 4, "aion.paths.earliestArrival"));
  AION_ASSIGN_OR_RETURN(int64_t src, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t tgt, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(int64_t t1, IntArg(args, 2));
  AION_ASSIGN_OR_RETURN(int64_t t2, IntArg(args, 3));
  AION_ASSIGN_OR_RETURN(auto temporal,
                        engine.aion()->GetTemporalGraph(
                            static_cast<Timestamp>(t1),
                            static_cast<Timestamp>(t2)));
  const auto ea = algo::EarliestArrival(*temporal,
                                        static_cast<graph::NodeId>(src),
                                        static_cast<Timestamp>(t1),
                                        static_cast<Timestamp>(t2));
  // The algorithm exits early with a partial vector when the query is
  // killed; surface the cancellation instead of the partial answer.
  if (obs::CancellationRequested()) return Status::Cancelled("query killed");
  QueryResult result;
  result.columns = {"arrival"};
  const graph::NodeId target = static_cast<graph::NodeId>(tgt);
  const Timestamp arrival =
      target < ea.size() ? ea[target] : graph::kInfiniteTime;
  if (arrival == graph::kInfiniteTime) {
    result.rows.push_back({Value()});
  } else {
    result.rows.push_back({Value(static_cast<int64_t>(arrival))});
  }
  return result;
}

StatusOr<QueryResult> LatestDepartureProc(QueryEngine& engine,
                                          const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 4, "aion.paths.latestDeparture"));
  AION_ASSIGN_OR_RETURN(int64_t src, IntArg(args, 0));
  AION_ASSIGN_OR_RETURN(int64_t tgt, IntArg(args, 1));
  AION_ASSIGN_OR_RETURN(int64_t t1, IntArg(args, 2));
  AION_ASSIGN_OR_RETURN(int64_t t2, IntArg(args, 3));
  AION_ASSIGN_OR_RETURN(auto temporal,
                        engine.aion()->GetTemporalGraph(
                            static_cast<Timestamp>(t1),
                            static_cast<Timestamp>(t2)));
  const auto ld = algo::LatestDeparture(*temporal,
                                        static_cast<graph::NodeId>(tgt),
                                        static_cast<Timestamp>(t1),
                                        static_cast<Timestamp>(t2));
  // The algorithm exits early with a partial vector when the query is
  // killed; surface the cancellation instead of the partial answer.
  if (obs::CancellationRequested()) return Status::Cancelled("query killed");
  QueryResult result;
  result.columns = {"departure"};
  const graph::NodeId source = static_cast<graph::NodeId>(src);
  const Timestamp departure = source < ld.size() ? ld[source] : 0;
  if (departure == 0) {
    result.rows.push_back({Value()});
  } else {
    result.rows.push_back({Value(static_cast<int64_t>(departure))});
  }
  return result;
}

// --- observability procedures (DBMS METRICS / DBMS TRACES) ----------------

StatusOr<QueryResult> DbmsMetrics(QueryEngine& engine,
                                  const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.metrics"));
  QueryResult result;
  result.columns = {"name", "kind", "value"};
  auto add = [&result](const std::string& name, const char* kind,
                       int64_t value) {
    result.rows.push_back(
        {Value(name), Value(std::string(kind)), Value(value)});
  };
  obs::MetricsSnapshot snapshot;
  if (engine.aion() != nullptr) {
    // Store-level introspection rows first, then every instrument.
    core::AionStore::Introspection info = engine.aion()->Introspect();
    add("aion.last_ingested_ts", "gauge",
        static_cast<int64_t>(info.last_ingested_ts));
    add("aion.total_bytes", "gauge", static_cast<int64_t>(info.total_bytes));
    add("aion.latest_ts", "gauge", static_cast<int64_t>(info.latest_ts));
    add("aion.timestore.enabled", "gauge", info.timestore_enabled ? 1 : 0);
    add("aion.lineagestore.enabled", "gauge", info.lineage_enabled ? 1 : 0);
    snapshot = std::move(info.metrics);
  } else {
    snapshot = engine.metrics()->Snapshot();  // engine-only registry
  }
  for (const auto& [name, value] : snapshot.counters) {
    add(name, "counter", static_cast<int64_t>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    add(name, "gauge", value);
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    add(name + ".count", "histogram", static_cast<int64_t>(summary.count));
    add(name + ".sum", "histogram", static_cast<int64_t>(summary.sum));
    add(name + ".p50", "histogram", static_cast<int64_t>(summary.p50));
    add(name + ".p95", "histogram", static_cast<int64_t>(summary.p95));
    add(name + ".p99", "histogram", static_cast<int64_t>(summary.p99));
    add(name + ".max", "histogram", static_cast<int64_t>(summary.max));
  }
  return result;
}

StatusOr<QueryResult> DbmsTraces(QueryEngine& engine,
                                 const std::vector<Literal>& args) {
  (void)engine;  // traces are process-wide, not per-store
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.traces"));
  QueryResult result;
  result.columns = {"span",    "start_nanos", "duration_nanos", "thread",
                    "span_id", "parent_id",   "query_id"};
  for (const obs::TraceEvent& event : obs::TraceSink::Global().Snapshot()) {
    result.rows.push_back(
        {Value(std::string(event.name)),
         Value(static_cast<int64_t>(event.start_nanos)),
         Value(static_cast<int64_t>(event.duration_nanos)),
         Value(static_cast<int64_t>(event.thread_id)),
         Value(static_cast<int64_t>(event.span_id)),
         Value(static_cast<int64_t>(event.parent_id)),
         Value(static_cast<int64_t>(event.query_id))});
  }
  return result;
}

StatusOr<QueryResult> DbmsTraceExport(QueryEngine& engine,
                                      const std::vector<Literal>& args) {
  (void)engine;
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.trace.export"));
  QueryResult result;
  result.columns = {"trace"};
  result.rows.push_back({Value(obs::TraceSink::Global().ExportChromeTrace())});
  return result;
}

StatusOr<QueryResult> DbmsSlowlog(QueryEngine& engine,
                                  const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.slowlog"));
  QueryResult result;
  result.columns = {"unix_millis", "query_id", "session_id",
                    "nanos",       "store",    "query",
                    "summary"};
  if (engine.aion() == nullptr ||
      engine.aion()->slow_query_log() == nullptr) {
    return result;  // no log configured -> empty table
  }
  for (obs::SlowQueryLog::Entry& entry :
       engine.aion()->slow_query_log()->Recent()) {
    result.rows.push_back(
        {Value(static_cast<int64_t>(entry.unix_millis)),
         Value(static_cast<int64_t>(entry.query_id)),
         Value(static_cast<int64_t>(entry.session_id)),
         Value(static_cast<int64_t>(entry.nanos)), Value(std::move(entry.store)),
         Value(std::move(entry.query)),
         Value(entry.summary_json.empty() ? std::string("{}")
                                          : std::move(entry.summary_json))});
  }
  return result;
}

StatusOr<QueryResult> DbmsQueries(QueryEngine& engine,
                                  const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.queries"));
  QueryResult result;
  result.columns = {"query_id", "session_id",    "query", "store",
                    "elapsed_nanos", "rows", "cancel_requested"};
  for (obs::WorkloadRegistry::QueryInfo& info :
       engine.workload()->Queries()) {
    result.rows.push_back({Value(static_cast<int64_t>(info.query_id)),
                           Value(static_cast<int64_t>(info.session_id)),
                           Value(std::move(info.text)),
                           Value(std::move(info.route)),
                           Value(static_cast<int64_t>(info.elapsed_nanos)),
                           Value(static_cast<int64_t>(info.rows)),
                           Value(info.cancel_requested)});
  }
  return result;
}

StatusOr<QueryResult> DbmsQueriesKill(QueryEngine& engine,
                                      const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireArgs(args, 1, "dbms.queries.kill"));
  AION_ASSIGN_OR_RETURN(int64_t id, IntArg(args, 0));
  const bool killed = engine.workload()->Cancel(static_cast<uint64_t>(id));
  QueryResult result;
  result.columns = {"query_id", "killed"};
  result.rows.push_back({Value(id), Value(killed)});
  return result;
}

StatusOr<QueryResult> DbmsSessions(QueryEngine& engine,
                                   const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.sessions"));
  QueryResult result;
  result.columns = {"session_id", "queries",   "rows",     "wall_nanos",
                    "failures",   "cancelled", "p99_nanos"};
  for (const obs::WorkloadRegistry::SessionInfo& info :
       engine.workload()->Sessions()) {
    result.rows.push_back({Value(static_cast<int64_t>(info.session_id)),
                           Value(static_cast<int64_t>(info.queries)),
                           Value(static_cast<int64_t>(info.rows)),
                           Value(static_cast<int64_t>(info.wall_nanos)),
                           Value(static_cast<int64_t>(info.failures)),
                           Value(static_cast<int64_t>(info.cancelled)),
                           Value(static_cast<int64_t>(info.latency.p99))});
  }
  return result;
}

StatusOr<QueryResult> DbmsHealth(QueryEngine& engine,
                                 const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.health"));
  const obs::HealthReport report =
      engine.aion()->health_watchdog()->Evaluate();
  QueryResult result;
  result.columns = {"check", "value", "threshold", "ok"};
  // The overall verdict first, then per-check detail.
  result.rows.push_back({Value(std::string("overall")),
                         Value(report.healthy ? 1.0 : 0.0), Value(0.0),
                         Value(report.healthy)});
  for (const obs::HealthCheck& check : report.checks) {
    result.rows.push_back({Value(check.name), Value(check.value),
                           Value(check.threshold), Value(check.ok)});
  }
  return result;
}

StatusOr<QueryResult> DbmsFlight(QueryEngine& engine,
                                 const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.flight"));
  QueryResult result;
  result.columns = {"flight"};
  result.rows.push_back({Value(engine.aion()->flight_recorder()->ToJson())});
  return result;
}

StatusOr<QueryResult> DbmsCompaction(QueryEngine& engine,
                                     const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.compaction"));
  const core::AionStore::RetentionInfo info = engine.aion()->RetentionStats();
  QueryResult result;
  result.columns = {"stat", "value"};
  auto add = [&result](const char* stat, uint64_t value) {
    result.rows.push_back(
        {Value(std::string(stat)), Value(static_cast<int64_t>(value))});
  };
  add("retention_window", info.retention_window);
  add("logical_floor", info.logical_floor);
  add("physical_floor", info.physical_floor);
  add("compaction_rounds", info.compaction_rounds);
  add("segments_live", info.segments_live);
  add("segments_dropped", info.segments_dropped);
  add("records_dropped", info.records_dropped);
  add("bytes_reclaimed", info.bytes_reclaimed);
  add("snapshots_live", info.snapshots_live);
  add("snapshots_dropped", info.snapshots_dropped);
  add("chains_rewritten", info.chains_rewritten);
  add("log_bytes", info.log_bytes);
  add("snapshot_bytes", info.snapshot_bytes);
  return result;
}

StatusOr<QueryResult> DbmsCompactionRun(QueryEngine& engine,
                                        const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireAion(engine));
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.compaction.run"));
  AION_RETURN_IF_ERROR(engine.aion()->CompactNow());
  // Report the post-round accounting so the caller sees what the round did.
  return DbmsCompaction(engine, args);
}

StatusOr<QueryResult> DbmsMetricsReset(QueryEngine& engine,
                                       const std::vector<Literal>& args) {
  AION_RETURN_IF_ERROR(RequireArgs(args, 0, "dbms.metrics.reset"));
  engine.metrics()->Reset();
  QueryResult result;
  result.columns = {"reset"};
  result.rows.push_back({Value(true)});
  return result;
}

}  // namespace

void RegisterBuiltinAionProcedures(QueryEngine* engine) {
  engine->RegisterProcedure("aion.nodeHistory", NodeHistory);
  engine->RegisterProcedure("aion.expand", Expand);
  engine->RegisterProcedure("aion.relationships", Relationships);
  engine->RegisterProcedure("aion.diff", Diff);
  engine->RegisterProcedure("aion.diffCount", DiffCount);
  engine->RegisterProcedure("aion.graphStats", GraphStats);
  engine->RegisterProcedure("aion.window", Window);
  engine->RegisterProcedure("aion.incremental.avg", IncrementalAvg);
  engine->RegisterProcedure("aion.incremental.bfs", IncrementalBfsProc);
  engine->RegisterProcedure("aion.incremental.pagerank",
                            IncrementalPageRankProc);
  engine->RegisterProcedure("aion.paths.earliestArrival",
                            EarliestArrivalProc);
  engine->RegisterProcedure("aion.paths.latestDeparture",
                            LatestDepartureProc);
  engine->RegisterProcedure("dbms.metrics", DbmsMetrics);
  engine->RegisterProcedure("dbms.metrics.reset", DbmsMetricsReset);
  engine->RegisterProcedure("dbms.health", DbmsHealth);
  engine->RegisterProcedure("dbms.compaction", DbmsCompaction);
  engine->RegisterProcedure("dbms.compaction.run", DbmsCompactionRun);
  engine->RegisterProcedure("dbms.flight", DbmsFlight);
  engine->RegisterProcedure("dbms.traces", DbmsTraces);
  engine->RegisterProcedure("dbms.trace.export", DbmsTraceExport);
  engine->RegisterProcedure("dbms.slowlog", DbmsSlowlog);
  engine->RegisterProcedure("dbms.queries", DbmsQueries);
  engine->RegisterProcedure("dbms.queries.kill", DbmsQueriesKill);
  engine->RegisterProcedure("dbms.sessions", DbmsSessions);
}

}  // namespace aion::query
