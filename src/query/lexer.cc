#include "query/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace aion::query {

using util::Status;
using util::StatusOr;

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "USE",   "FOR",     "SYSTEM_TIME", "AS",     "OF",       "FROM",
      "TO",    "BETWEEN", "AND",         "OR",     "NOT",      "CONTAINED",
      "IN",    "MATCH",   "WHERE",       "RETURN", "LIMIT",    "CREATE",
      "SET",   "DELETE",  "CALL",        "YIELD",  "COUNT",    "ID",
      "APPLICATION_TIME", "ORDER", "BY",  "DESC",  "ASC",      "TRUE",
      "FALSE", "NULL",    "DETACH",      "EXPLAIN", "PROFILE"};
  return *kKeywords;
}

}  // namespace

bool IsKeyword(const std::string& upper_word) {
  return Keywords().count(upper_word) > 0;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenType type, std::string text = "") {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.position = i;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '/') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && isdigit(static_cast<unsigned char>(input[i]))) ++i;
      bool is_float = false;
      if (i < n && input[i] == '.' && i + 1 < n &&
          isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      Token t;
      t.position = start;
      const std::string text = input.substr(start, i - start);
      if (is_float) {
        t.type = TokenType::kFloat;
        t.float_value = std::stod(text);
      } else {
        t.type = TokenType::kInteger;
        t.int_value = std::stoll(text);
      }
      t.text = text;
      tokens.push_back(std::move(t));
      continue;
    }
    if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return toupper(ch); });
      Token t;
      t.position = start;
      if (IsKeyword(upper)) {
        t.type = TokenType::kKeyword;
        t.text = upper;
        t.raw = std::move(word);
      } else {
        t.type = TokenType::kIdentifier;
        t.text = std::move(word);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\\' && i + 1 < n) {
          text.push_back(input[i + 1]);
          i += 2;
          continue;
        }
        if (input[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      push(TokenType::kString, std::move(text));
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen);
        ++i;
        break;
      case '[':
        push(TokenType::kLBracket);
        ++i;
        break;
      case ']':
        push(TokenType::kRBracket);
        ++i;
        break;
      case '{':
        push(TokenType::kLBrace);
        ++i;
        break;
      case '}':
        push(TokenType::kRBrace);
        ++i;
        break;
      case ':':
        push(TokenType::kColon);
        ++i;
        break;
      case ',':
        push(TokenType::kComma);
        ++i;
        break;
      case '.':
        push(TokenType::kDot);
        ++i;
        break;
      case '*':
        push(TokenType::kStar);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus);
        ++i;
        break;
      case '$':
        push(TokenType::kDollar);
        ++i;
        break;
      case '=':
        push(TokenType::kEq);
        ++i;
        break;
      case '-':
        if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kArrowRight);
          i += 2;
        } else {
          push(TokenType::kDash);
          ++i;
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '-') {
          push(TokenType::kArrowLeft);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLte);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNeq);
          i += 2;
        } else {
          push(TokenType::kLt);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGte);
          i += 2;
        } else {
          push(TokenType::kGt);
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(i));
    }
  }
  push(TokenType::kEnd);
  return tokens;
}

}  // namespace aion::query
