// Temporal procedures (Sec 5.1: "Aion wraps the functionality exposed in
// Table 1 with temporal procedures — functions invoked from Cypher"), plus
// the incremental-algorithm procedures of Sec 5.2/6.7.
//
// Built-ins (all callable as `CALL name(args) [YIELD cols]`):
//   aion.nodeHistory(id, start, end)          -> ts_start, ts_end, node
//   aion.expand(id, direction, hops, t)       -> hop, node_id
//   aion.diff(start, end)                     -> op, id, ts
//   aion.diffCount(start, end)                -> updates
//   aion.graphStats(t)                        -> nodes, relationships
//   aion.window(start, end)                   -> nodes, relationships
//   aion.incremental.avg(key, start, end, step)      -> t, avg, count
//   aion.incremental.bfs(source, start, end, step)   -> t, reached
//   aion.incremental.pagerank(start, end, step)      -> t, iterations
//   aion.paths.earliestArrival(src, tgt, t1, t2)     -> arrival
//   aion.paths.latestDeparture(src, tgt, t1, t2)     -> departure
//
// Observability built-ins:
//   dbms.metrics()        -> name, kind, value (every registry instrument)
//   dbms.metrics.reset()  -> reset (zeroes instruments in place)
//   dbms.traces()         -> span, start/duration, thread, span/parent/query id
//   dbms.trace.export()   -> trace (Chrome trace_event JSON, one row)
//   dbms.slowlog()        -> unix_millis, nanos, store, query, summary
//   dbms.health()         -> check, value, threshold, ok ("overall" first)
//   dbms.flight()         -> flight (flight-recorder ring JSON, one row)
//   dbms.compaction()     -> stat, value (storage-lifecycle ledger)
//   dbms.compaction.run() -> stat, value (one synchronous round, then ledger)
#ifndef AION_QUERY_PROCEDURES_H_
#define AION_QUERY_PROCEDURES_H_

namespace aion::query {

class QueryEngine;

/// Registers the built-in aion.* procedures on `engine`.
void RegisterBuiltinAionProcedures(QueryEngine* engine);

}  // namespace aion::query

#endif  // AION_QUERY_PROCEDURES_H_
