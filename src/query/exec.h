// Morsel-driven parallel query execution (ROADMAP item 5): the engine's
// row-producing operators (node scans, pattern expansion, history-version
// folding) split their input domain into fixed-size work units ("morsels")
// and dispatch them onto AionStore's shared read pool. Workers execute
// against immutable, epoch-pinned snapshot views, so they never touch the
// ingest mutex; the coordinator merges per-morsel outputs in morsel-index
// order, which makes results byte-identical at any worker count — including
// the inline sequential path, which runs the exact same morsel bodies in
// the exact same order.
//
// Observability contracts the driver enforces (see docs/ARCHITECTURE.md):
//   * Cancellation: workers carry no ActiveQueryScope. The driver captures
//     the coordinator's RunningQuery once and exposes its cancel flag via
//     cancelled(); morsel bodies poll it at row boundaries. A killed query
//     surfaces util::Status::Cancelled from Run().
//   * Store-work attribution: each morsel runs under its own thread-local
//     obs::QueryStatsScope; the driver folds every morsel's stats into the
//     coordinator's scope *before* Run() returns, so an enclosing PROFILE
//     stage sees all worker work attributed to the dispatching operator.
//   * Row accounting: workers never call obs::TickCurrentQueryRows — the
//     RunningQuery row register is single-writer by design. Bodies count
//     into per-morsel outputs; the coordinator ticks once after the merge.
//   * PROFILE time: an operator's wall nanos are the coordinator's
//     dispatch-to-merge interval. Per-worker busy nanos are summed into
//     Outcome::worker_busy_nanos for display only, never added to any
//     stage, so `parent >= sum(children)` holds under parallel dispatch.
#ifndef AION_QUERY_EXEC_H_
#define AION_QUERY_EXEC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "obs/workload_registry.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace aion::query {

/// Tuning knobs for morsel dispatch. Exposed on QueryEngine so tests and
/// benchmarks can sweep worker counts deterministically.
struct ExecOptions {
  /// Items per morsel (seeds per scan unit / versions per history unit).
  /// Must be positive.
  size_t morsel_size = 64;
  /// Upper bound on concurrent workers, including the coordinator, which
  /// always participates. 0 = the read pool's width + 1; 1 = sequential.
  size_t max_workers = 0;
  /// Inputs smaller than this run inline — dispatch overhead would dominate.
  size_t min_parallel_items = 128;
};

/// Instruments the driver ticks (resolved once by the engine; the same
/// names are registered in AionStore::Open so the exec.* name-set exists in
/// every store). All pointers may be null.
struct ExecInstruments {
  obs::Counter* morsels_dispatched = nullptr;  // exec.morsels_dispatched
  obs::Counter* parallel_queries = nullptr;    // exec.parallel_queries
  obs::Counter* sequential_queries = nullptr;  // exec.sequential_queries
  obs::Gauge* parallel_fraction = nullptr;  // exec.parallel_fraction_permille
};

/// One dispatch over [0, n): partitions the domain into ceil(n/morsel_size)
/// morsels and runs `body(morsel_index, begin, end)` for each. Bodies for
/// distinct morsels may run concurrently on pool workers (plus the
/// coordinator); bodies must only write state owned by their morsel index.
class MorselDriver {
 public:
  /// What one Run() did, for PROFILE annotation.
  struct Outcome {
    bool parallel = false;
    size_t morsels = 0;
    size_t workers = 0;  // tasks that actually touched a morsel
    uint64_t worker_busy_nanos = 0;
  };

  using MorselBody =
      std::function<util::Status(size_t morsel, size_t begin, size_t end)>;

  /// `pool` may be null (always sequential).
  MorselDriver(util::ThreadPool* pool, const ExecOptions& options,
               const ExecInstruments& instruments);

  MorselDriver(const MorselDriver&) = delete;
  MorselDriver& operator=(const MorselDriver&) = delete;

  /// Runs `body` over every morsel of [0, n). Parallel when a pool is
  /// available, max_workers != 1 and n >= min_parallel_items; inline (same
  /// bodies, same order) otherwise. Returns the first body error (morsels
  /// already running drain; queued morsels are skipped), Cancelled when the
  /// coordinator's query was killed, OK otherwise.
  util::StatusOr<Outcome> Run(size_t n, const MorselBody& body);

  /// True when the dispatching query was killed (or a sibling morsel
  /// failed). Morsel bodies poll this at row boundaries; one relaxed load.
  bool cancelled() const {
    return stop_.load(std::memory_order_relaxed) ||
           (cancel_flag_ != nullptr &&
            cancel_flag_->load(std::memory_order_relaxed));
  }

  size_t NumMorsels(size_t n) const {
    const size_t size = options_.morsel_size > 0 ? options_.morsel_size : 1;
    return (n + size - 1) / size;
  }

 private:
  util::ThreadPool* pool_;
  const ExecOptions options_;
  const ExecInstruments instruments_;
  /// The coordinator's kill flag, captured at construction (workers have no
  /// ActiveQueryScope of their own). Null when the statement is untracked.
  const std::atomic<bool>* cancel_flag_;
  /// Set on the first body failure so sibling morsels stop early.
  std::atomic<bool> stop_{false};
};

}  // namespace aion::query

#endif  // AION_QUERY_EXEC_H_
