#include "query/engine.h"

#include <algorithm>
#include <optional>
#include <set>

#include "core/bitemporal.h"
#include "obs/query_stats.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "query/procedures.h"

namespace aion::query {

using graph::GraphView;
using graph::Node;
using graph::NodeId;
using graph::Relationship;
using util::Status;
using util::StatusOr;

namespace {

/// One finished PROFILE operator: what ran, where, and what it cost.
struct ProfileStep {
  std::string op;
  std::string detail;
  std::string store;
  uint64_t rows = 0;
  obs::QueryStats stats;
  uint64_t nanos = 0;
};

class ProfileRecorder {
 public:
  void Step(ProfileStep step) { steps_.push_back(std::move(step)); }
  const std::vector<ProfileStep>& steps() const { return steps_; }

 private:
  std::vector<ProfileStep> steps_;
};

// The engine instance is shared across server connection threads, so the
// active profile and the "which store served the last statement" register
// are thread-local rather than members.
thread_local ProfileRecorder* tls_profile = nullptr;
thread_local const char* tls_last_store = "-";

/// Publishes the store route of the running statement: the thread-local
/// register feeding PROFILE/slowlog/capture, plus the live RunningQuery so
/// dbms.queries() shows where a statement is executing while it runs.
void SetRoute(const char* store) {
  tls_last_store = store;
  obs::SetCurrentQueryRoute(store);
}

/// RAII profile stage: when a ProfileRecorder is active on this thread,
/// measures wall nanos and the QueryStats delta across the enclosed code and
/// appends one ProfileStep on destruction. Free when PROFILE is not active.
class ProfileStage {
 public:
  ProfileStage(const char* op, std::string detail)
      : active_(tls_profile != nullptr) {
    if (!active_) return;
    op_ = op;
    detail_ = std::move(detail);
    if (obs::QueryStats* s = obs::QueryStatsScope::Current()) mark_ = *s;
    start_ = obs::NowNanos();
  }
  ~ProfileStage() {
    if (!active_) return;
    ProfileStep step;
    step.op = op_;
    step.detail = std::move(detail_);
    step.store = tls_last_store;
    step.rows = rows_;
    if (obs::QueryStats* s = obs::QueryStatsScope::Current()) {
      step.stats = s->DeltaSince(mark_);
    }
    step.nanos = obs::NowNanos() - start_;
    tls_profile->Step(std::move(step));
  }
  ProfileStage(const ProfileStage&) = delete;
  ProfileStage& operator=(const ProfileStage&) = delete;

  void set_rows(uint64_t rows) { rows_ = rows; }

  /// Appends execution facts discovered while the stage ran (e.g. morsel
  /// dispatch shape). No-op when PROFILE is not active.
  void append_detail(const std::string& text) {
    if (!active_ || text.empty()) return;
    if (!detail_.empty()) detail_ += " ";
    detail_ += text;
  }

 private:
  const bool active_;
  const char* op_ = nullptr;
  std::string detail_;
  obs::QueryStats mark_;
  uint64_t start_ = 0;
  uint64_t rows_ = 0;
};

// Morsel-dispatch shape of the statement executing on this thread, folded
// across MatchPath calls (multi-pattern statements dispatch once per path)
// so the enclosing PROFILE stage can annotate itself. Worker busy nanos are
// display-only: stage wall time stays the coordinator's dispatch-to-merge
// interval, preserving `Total >= sum(steps)`.
struct DispatchNote {
  bool valid = false;
  bool parallel = false;
  size_t morsels = 0;
  size_t workers = 0;
  uint64_t worker_busy_nanos = 0;
};
thread_local DispatchNote tls_dispatch;

void NoteDispatch(const MorselDriver::Outcome& outcome) {
  if (tls_profile == nullptr) return;  // the note only feeds PROFILE detail
  tls_dispatch.valid = true;
  tls_dispatch.parallel |= outcome.parallel;
  tls_dispatch.morsels += outcome.morsels;
  tls_dispatch.workers = std::max(tls_dispatch.workers, outcome.workers);
  tls_dispatch.worker_busy_nanos += outcome.worker_busy_nanos;
}

std::string TakeDispatchDetail() {
  if (!tls_dispatch.valid) return "";
  std::string text = "morsels=" + std::to_string(tls_dispatch.morsels) +
                     " workers=" +
                     std::to_string(std::max<size_t>(tls_dispatch.workers, 1));
  if (tls_dispatch.parallel) {
    text += " worker_busy_nanos=" +
            std::to_string(tls_dispatch.worker_busy_nanos);
  }
  tls_dispatch = DispatchNote{};
  return text;
}

}  // namespace

QueryEngine::QueryEngine(txn::GraphDatabase* db, core::AionStore* aion)
    : db_(db), aion_(aion) {
  if (aion_ != nullptr) {
    metrics_ = aion_->metrics();
  } else {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = own_metrics_.get();
  }
  metric_statements_ = metrics_->counter("query.statements");
  metric_failures_ = metrics_->counter("query.failures");
  metric_store_lineage_ = metrics_->counter("query.store.lineage");
  metric_store_timestore_ = metrics_->counter("query.store.timestore");
  metric_store_latest_ = metrics_->counter("query.store.latest");
  metric_parse_ = metrics_->histogram("query.parse_nanos");
  metric_plan_ = metrics_->histogram("query.plan_nanos");
  metric_execute_ = metrics_->histogram("query.execute_nanos");
  exec_instruments_.morsels_dispatched =
      metrics_->counter("exec.morsels_dispatched");
  exec_instruments_.parallel_queries =
      metrics_->counter("exec.parallel_queries");
  exec_instruments_.sequential_queries =
      metrics_->counter("exec.sequential_queries");
  exec_instruments_.parallel_fraction =
      metrics_->gauge("exec.parallel_fraction_permille");
  exec_pool_ = aion_ != nullptr ? aion_->read_pool() : nullptr;
  slow_log_ = aion_ != nullptr ? aion_->slow_query_log() : nullptr;
  if (aion_ != nullptr) {
    workload_ = aion_->workload_registry();
    capture_ = aion_->workload_capture();
  } else {
    own_workload_ = std::make_unique<obs::WorkloadRegistry>(metrics_);
    workload_ = own_workload_.get();
  }
  // Fronting both layers: host txn.* health checks join Aion's watchdog
  // and the host records into Aion's registry.
  if (aion_ != nullptr && db_ != nullptr) aion_->AttachHostDatabase(db_);
  RegisterBuiltinProcedures();
}

void QueryEngine::RegisterProcedure(const std::string& name, ProcedureFn fn) {
  procedures_[name] = std::move(fn);
}

void QueryEngine::RegisterBuiltinProcedures() {
  RegisterBuiltinAionProcedures(this);
}

StatusOr<QueryResult> QueryEngine::Execute(const std::string& text) {
  const uint64_t parse_start = obs::NowNanos();
  StatusOr<Statement> stmt = Parse(text);
  const uint64_t parse_end = obs::NowNanos();
  metric_parse_->Record(parse_end - parse_start);
  if (!stmt.ok()) {
    // Parse failures never reach Execute(stmt); account for them here so
    // statements == successes + failures holds.
    metric_statements_->Add();
    metric_failures_->Add();
    return stmt.status();
  }
  // The workload observatory, slowlog and capture all need the statement
  // text, so they live on this overload only. The registration id doubles
  // as the trace-context id (Execute(stmt) below reuses the ambient id), so
  // dbms.queries(), dbms.traces(), the slowlog and capture output all join
  // on one query_id.
  const uint64_t query_id = obs::TraceContext::NextQueryId();
  const uint64_t session_id = obs::SessionScope::CurrentSessionId();
  obs::TraceContext trace_context(query_id);
  // Donate the post-parse timestamp as the start time — execution begins
  // here, and it saves the registry its own clock read.
  std::shared_ptr<obs::WorkloadRegistry::RunningQuery> running =
      workload_->Register(query_id, session_id, text, parse_end);
  obs::ActiveQueryScope query_scope(running.get());
  const bool slow = slow_log_ != nullptr && slow_log_->enabled();
  const bool capturing = capture_ != nullptr && capture_->enabled();
  if (running == nullptr && !slow && !capturing) return Execute(*stmt);
  // The stats scope exists for the slowlog's summary column; when only the
  // registry (or capture) is on, skip it so store probes stay unattributed
  // and cheap.
  std::optional<obs::QueryStatsScope> stats_scope;
  if (slow) stats_scope.emplace();
  tls_last_store = "-";
  // Registration already stamped the start; re-reading the clock here
  // would only add skew between dbms.queries() elapsed and the slowlog.
  const uint64_t start =
      running != nullptr ? running->start_nanos : obs::NowNanos();
  StatusOr<QueryResult> result = Execute(*stmt);
  const uint64_t elapsed = obs::NowNanos() - start;
  const uint64_t rows = result.ok() ? result->rows.size() : 0;
  workload_->Finish(std::move(running), result.ok(),
                    result.status().IsCancelled(), elapsed, rows);
  if (slow && elapsed >= slow_log_->threshold_nanos()) {
    obs::SlowQueryLog::Entry entry;
    entry.query_id = query_id;
    entry.session_id = session_id;
    entry.nanos = elapsed;
    entry.store = tls_last_store;
    entry.query = text;
    entry.summary_json = stats_scope->stats().ToJson();
    slow_log_->Record(std::move(entry));
  }
  if (capturing) {
    obs::WorkloadCapture::Record record;
    record.query_id = query_id;
    record.session_id = session_id;
    record.nanos = elapsed;
    record.rows = rows;
    record.ok = result.ok();
    record.route = tls_last_store;
    record.text = text;
    capture_->Append(std::move(record));
  }
  return result;
}

StatusOr<QueryResult> QueryEngine::Execute(const Statement& stmt) {
  // Reuse the ambient query id when the text overload (or a procedure
  // re-entering the engine) already opened one, so nested execution keeps
  // attributing to the registered statement.
  const uint64_t ambient = obs::TraceContext::CurrentQueryId();
  obs::TraceContext trace_context(
      ambient != 0 ? ambient : obs::TraceContext::NextQueryId());
  AION_TRACE_SPAN("query.execute", metric_execute_);
  metric_statements_->Add();
  StatusOr<QueryResult> result =
      stmt.mode == Statement::Mode::kExplain   ? ExecuteExplain(stmt)
      : stmt.mode == Statement::Mode::kProfile ? ExecuteProfile(stmt)
                                               : ExecuteDispatch(stmt);
  if (!result.ok()) metric_failures_->Add();
  return result;
}

StatusOr<QueryResult> QueryEngine::ExecuteExplain(const Statement& stmt) {
  Statement inner = stmt;
  inner.mode = Statement::Mode::kRegular;
  PlanInfo plan;
  {
    obs::ScopedLatency plan_latency(metric_plan_);
    plan = PlanStatement(inner, aion_);
  }
  const std::vector<PlanOperator> ops = DescribePlan(inner, plan, aion_);
  QueryResult result;
  result.columns = {"operator", "depth", "detail", "store", "temporal"};
  for (const PlanOperator& op : ops) {
    result.rows.push_back({Value(op.op), Value(static_cast<int64_t>(op.depth)),
                           Value(op.detail), Value(op.store),
                           Value(op.temporal)});
  }
  return result;
}

StatusOr<QueryResult> QueryEngine::ExecuteProfile(const Statement& stmt) {
  Statement inner = stmt;
  inner.mode = Statement::Mode::kRegular;
  ProfileRecorder recorder;
  ProfileRecorder* prev_profile = tls_profile;
  tls_profile = &recorder;
  StatusOr<QueryResult> executed = Status::Internal("profile did not run");
  uint64_t total_nanos = 0;
  obs::QueryStats total_stats;
  {
    // The scope must close before we read its totals; the recorder's stages
    // slice the same accumulator into per-operator deltas.
    obs::QueryStatsScope stats_scope;
    const uint64_t start = obs::NowNanos();
    executed = ExecuteDispatch(inner);
    total_nanos = obs::NowNanos() - start;
    total_stats = stats_scope.stats();
  }
  tls_profile = prev_profile;
  if (!executed.ok()) return executed.status();

  QueryResult result;
  result.columns = {"operator",         "detail",
                    "store",            "rows",
                    "bptree_probes",    "records_replayed",
                    "graphstore_hits",  "graphstore_misses",
                    "pagecache_hits",   "pagecache_misses",
                    "nanos"};
  auto append = [&result](const ProfileStep& step) {
    result.rows.push_back(
        {Value(step.op), Value(step.detail), Value(step.store),
         Value(static_cast<int64_t>(step.rows)),
         Value(static_cast<int64_t>(step.stats.bptree_probes)),
         Value(static_cast<int64_t>(step.stats.records_replayed)),
         Value(static_cast<int64_t>(step.stats.graphstore_hits)),
         Value(static_cast<int64_t>(step.stats.graphstore_misses)),
         Value(static_cast<int64_t>(step.stats.pagecache_hits)),
         Value(static_cast<int64_t>(step.stats.pagecache_misses)),
         Value(static_cast<int64_t>(step.nanos))});
  };
  for (const ProfileStep& step : recorder.steps()) append(step);
  ProfileStep total;
  total.op = "Total";
  total.store = tls_last_store;
  total.rows = executed->rows.size();
  total.stats = total_stats;
  total.nanos = total_nanos;
  append(total);
  return result;
}

StatusOr<QueryResult> QueryEngine::ExecuteDispatch(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kMatch:
      return ExecuteMatch(stmt);
    case Statement::Kind::kCreate:
      return ExecuteCreate(stmt);
    case Statement::Kind::kMatchSet:
      return ExecuteMatchSet(stmt);
    case Statement::Kind::kMatchDelete:
      return ExecuteMatchDelete(stmt);
    case Statement::Kind::kCall:
      return ExecuteCall(stmt);
  }
  return Status::InvalidArgument("unknown statement kind");
}

// ---------------------------------------------------------------------------
// Views and point-history plans
// ---------------------------------------------------------------------------

StatusOr<std::shared_ptr<const GraphView>> QueryEngine::ViewAt(
    const TimeSpec& time) {
  if (time.kind == TimeSpec::Kind::kLatest) {
    // Current graph: a cheap CoW publication of the latest replica when
    // Aion is attached, else a clone of the host's graph.
    if (aion_ != nullptr) {
      return std::static_pointer_cast<const GraphView>(aion_->LatestGraph());
    }
    return std::static_pointer_cast<const GraphView>(
        std::shared_ptr<const graph::MemoryGraph>(db_->CloneCurrent()));
  }
  if (aion_ == nullptr) {
    return Status::FailedPrecondition(
        "temporal queries require Aion to be attached");
  }
  return aion_->GetGraphAt(time.a);
}

StatusOr<QueryResult> QueryEngine::ExecutePointHistory(const Statement& stmt,
                                                       const PlanInfo& plan) {
  graph::Timestamp start = 0, end = 0;
  stmt.time.ToWindow(&start, &end);
  std::vector<Binding> bindings;
  {
    ProfileStage stage("NodeHistoryScan",
                       "node=" + std::to_string(plan.anchor_id));
    AION_ASSIGN_OR_RETURN(std::vector<graph::NodeVersion> versions,
                          aion_->GetNode(plan.anchor_id, start, end));
    // Bitemporal filter (Sec 4.5): system-time-valid results first, then the
    // application-time predicate.
    for (const Predicate& pred : stmt.predicates) {
      if (pred.kind == Predicate::Kind::kApplicationTime) {
        versions = core::FilterByApplicationTime(std::move(versions),
                                                 pred.app_a, pred.app_b);
      }
    }
    // Label / property predicates still apply per version, morselized over
    // the version list (slot merge in morsel order keeps version order).
    const PathPattern& path = stmt.patterns.front();
    MorselDriver driver(exec_pool_, exec_options_, exec_instruments_);
    std::vector<std::vector<Binding>> slots(
        driver.NumMorsels(versions.size()));
    util::StatusOr<MorselDriver::Outcome> outcome = driver.Run(
        versions.size(),
        [&](size_t morsel, size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            if (driver.cancelled()) return Status::Cancelled("query killed");
            graph::NodeVersion& v = versions[i];
            if (!NodeMatches(path.nodes.front(), v.entity)) continue;
            Binding binding;
            binding.values[path.nodes.front().variable] =
                Value(std::move(v.entity));
            if (PredicatesHold(stmt, binding)) {
              slots[morsel].push_back(std::move(binding));
            }
          }
          return Status::OK();
        });
    AION_RETURN_IF_ERROR(outcome.status());
    NoteDispatch(*outcome);
    for (std::vector<Binding>& slot : slots) {
      for (Binding& binding : slot) bindings.push_back(std::move(binding));
    }
    stage.set_rows(bindings.size());
    if (tls_profile != nullptr) stage.append_detail(TakeDispatchDetail());
  }
  ProfileStage stage("ProduceResults", "");
  StatusOr<QueryResult> result = Project(stmt, bindings);
  if (result.ok()) stage.set_rows(result->rows.size());
  return result;
}

// ---------------------------------------------------------------------------
// MATCH
// ---------------------------------------------------------------------------

bool QueryEngine::NodeMatches(const NodePattern& pattern,
                              const Node& node) const {
  if (!pattern.label.empty() && !node.HasLabel(pattern.label)) return false;
  for (const auto& [key, literal] : pattern.properties) {
    const graph::PropertyValue* actual = node.props.Get(key);
    if (actual == nullptr || !(*actual == literal.ToProperty())) return false;
  }
  return true;
}

bool QueryEngine::PredicatesHold(const Statement& stmt,
                                 const Binding& binding) const {
  for (const Predicate& pred : stmt.predicates) {
    auto it = binding.values.find(pred.variable);
    switch (pred.kind) {
      case Predicate::Kind::kIdEquals: {
        if (it == binding.values.end()) continue;  // not bound yet
        const uint64_t id = it->second.is_node()
                                ? it->second.AsNode().id
                                : it->second.is_relationship()
                                      ? it->second.AsRelationship().id
                                      : graph::kInvalidNodeId;
        if (id != static_cast<uint64_t>(pred.literal.int_value)) return false;
        break;
      }
      case Predicate::Kind::kPropertyCompare: {
        if (it == binding.values.end()) continue;
        const graph::PropertySet* props = nullptr;
        if (it->second.is_node()) {
          props = &it->second.AsNode().props;
        } else if (it->second.is_relationship()) {
          props = &it->second.AsRelationship().props;
        } else {
          return false;
        }
        const graph::PropertyValue* actual = props->Get(pred.key);
        if (actual == nullptr) return false;
        const graph::PropertyValue expected = pred.literal.ToProperty();
        switch (pred.op) {
          case Predicate::Op::kEq:
            if (!(*actual == expected)) return false;
            break;
          case Predicate::Op::kNeq:
            if (*actual == expected) return false;
            break;
          default: {
            const double a = actual->ToNumber();
            const double b = expected.ToNumber();
            if (pred.op == Predicate::Op::kLt && !(a < b)) return false;
            if (pred.op == Predicate::Op::kLte && !(a <= b)) return false;
            if (pred.op == Predicate::Op::kGt && !(a > b)) return false;
            if (pred.op == Predicate::Op::kGte && !(a >= b)) return false;
            break;
          }
        }
        break;
      }
      case Predicate::Kind::kApplicationTime:
        // Handled in point-history plans; over snapshots, application time
        // is checked against each bound node's properties with the system
        // interval unknown -> property-only check.
        for (const auto& [var, value] : binding.values) {
          if (value.is_node()) {
            if (!core::ApplicationTimeContainedIn(
                    value.AsNode().props,
                    graph::TimeInterval{0, graph::kInfiniteTime}, pred.app_a,
                    pred.app_b)) {
              return false;
            }
          }
        }
        break;
    }
  }
  return true;
}

Status QueryEngine::MatchPath(const PathPattern& path, const GraphView& view,
                              const Statement& stmt,
                              std::vector<Binding>* out) {
  // Seed candidates for the first node. Collection stays sequential:
  // ForEachNode's iteration order (base order, then overlay-only nodes on
  // CoW views) is the ordering contract for the result set, and the filter
  // is cheap relative to per-seed expansion.
  std::vector<Node> seeds;
  NodeId anchor = graph::kInvalidNodeId;
  for (const Predicate& pred : stmt.predicates) {
    if (pred.kind == Predicate::Kind::kIdEquals &&
        pred.variable == path.nodes.front().variable) {
      anchor = static_cast<NodeId>(pred.literal.int_value);
    }
  }
  if (anchor != graph::kInvalidNodeId) {
    const Node* node = view.GetNode(anchor);
    if (node != nullptr && NodeMatches(path.nodes.front(), *node)) {
      seeds.push_back(*node);
    }
  } else {
    size_t scanned = 0;
    bool killed = false;
    view.ForEachNode([&](const Node& node) {
      if (killed) return;
      if ((++scanned & 1023u) == 0 && obs::CancellationRequested()) {
        killed = true;
        return;
      }
      if (NodeMatches(path.nodes.front(), node)) seeds.push_back(node);
    });
    if (killed) return Status::Cancelled("query killed");
  }

  // Morsel dispatch: each morsel expands a contiguous slice of seeds into
  // its own output slot; the merge walks slots in morsel-index order, so
  // results are byte-identical at any worker count (seed order forward,
  // depth-first order within each seed).
  MorselDriver driver(exec_pool_, exec_options_, exec_instruments_);
  std::vector<std::vector<Binding>> slots(driver.NumMorsels(seeds.size()));
  util::StatusOr<MorselDriver::Outcome> outcome = driver.Run(
      seeds.size(), [&](size_t morsel, size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          AION_RETURN_IF_ERROR(ExpandSeed(path, view, stmt,
                                          std::move(seeds[i]), driver,
                                          &slots[morsel]));
        }
        return Status::OK();
      });
  AION_RETURN_IF_ERROR(outcome.status());
  NoteDispatch(*outcome);
  size_t total = out->size();
  for (const std::vector<Binding>& slot : slots) total += slot.size();
  out->reserve(total);
  for (std::vector<Binding>& slot : slots) {
    for (Binding& binding : slot) out->push_back(std::move(binding));
  }
  return Status::OK();
}

Status QueryEngine::ExpandSeed(const PathPattern& path, const GraphView& view,
                               const Statement& stmt, Node seed,
                               const MorselDriver& driver,
                               std::vector<Binding>* out) const {
  // Depth-first extension along the path.
  struct Frame {
    Binding binding;
    NodeId current;
    size_t next_rel;
  };
  std::vector<Frame> stack;
  {
    Frame frame;
    const NodeId id = seed.id;
    if (!path.nodes.front().variable.empty()) {
      frame.binding.values[path.nodes.front().variable] =
          Value(std::move(seed));
    }
    frame.current = id;
    frame.next_rel = 0;
    stack.push_back(std::move(frame));
  }

  while (!stack.empty()) {
    // Operator-row boundary: one kill check per pattern frame. The driver
    // carries the coordinator's cancel flag, so the check works on pool
    // workers (which have no ActiveQueryScope of their own).
    if (driver.cancelled()) {
      return Status::Cancelled("query killed");
    }
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.next_rel == path.rels.size()) {
      if (PredicatesHold(stmt, frame.binding)) {
        out->push_back(std::move(frame.binding));
      }
      continue;
    }
    const RelPattern& rel_pattern = path.rels[frame.next_rel];
    const NodePattern& node_pattern = path.nodes[frame.next_rel + 1];
    const graph::Direction direction =
        rel_pattern.direction == RelPattern::Direction::kRight
            ? graph::Direction::kOutgoing
            : rel_pattern.direction == RelPattern::Direction::kLeft
                  ? graph::Direction::kIncoming
                  : graph::Direction::kBoth;

    // Expand exactly rel_pattern.hops steps; bind the relationship variable
    // only for single-hop patterns.
    struct HopState {
      NodeId node;
      uint32_t depth;
      const Relationship* via;
    };
    std::vector<HopState> frontier = {{frame.current, 0, nullptr}};
    std::vector<std::pair<NodeId, const Relationship*>> reached;
    std::set<std::pair<NodeId, uint32_t>> seen;
    while (!frontier.empty()) {
      HopState state = frontier.back();
      frontier.pop_back();
      if (state.depth == rel_pattern.hops) {
        reached.emplace_back(state.node, state.via);
        continue;
      }
      view.ForEachRel(state.node, direction, [&](graph::RelId rel_id) {
        const Relationship* rel = view.GetRelationship(rel_id);
        if (rel == nullptr) return;
        if (!rel_pattern.type.empty() && rel->type != rel_pattern.type) {
          return;
        }
        const NodeId nbr =
            direction == graph::Direction::kOutgoing
                ? rel->tgt
                : direction == graph::Direction::kIncoming
                      ? rel->src
                      : rel->Other(state.node);
        if (rel_pattern.hops > 1 &&
            !seen.insert({nbr, state.depth + 1}).second) {
          return;
        }
        frontier.push_back({nbr, state.depth + 1, rel});
      });
    }

    for (const auto& [nbr, via] : reached) {
      const Node* node = view.GetNode(nbr);
      if (node == nullptr || !NodeMatches(node_pattern, *node)) continue;
      Frame next = frame;
      if (!node_pattern.variable.empty()) {
        // Re-binding an existing variable must agree (cycles).
        auto existing = next.binding.values.find(node_pattern.variable);
        if (existing != next.binding.values.end()) {
          if (!existing->second.is_node() ||
              existing->second.AsNode().id != node->id) {
            continue;
          }
        } else {
          next.binding.values[node_pattern.variable] = Value(*node);
        }
      }
      if (!rel_pattern.variable.empty() && rel_pattern.hops == 1 &&
          via != nullptr) {
        next.binding.values[rel_pattern.variable] = Value(*via);
      }
      next.current = nbr;
      next.next_rel = frame.next_rel + 1;
      stack.push_back(std::move(next));
    }
  }
  return Status::OK();
}

StatusOr<std::vector<QueryEngine::Binding>> QueryEngine::MatchPatterns(
    const Statement& stmt, const GraphView& view) {
  // Cartesian product across comma-separated patterns (small arity).
  std::vector<Binding> bindings = {Binding{}};
  for (const PathPattern& path : stmt.patterns) {
    std::vector<Binding> path_bindings;
    AION_RETURN_IF_ERROR(MatchPath(path, view, stmt, &path_bindings));
    std::vector<Binding> merged;
    for (const Binding& left : bindings) {
      for (const Binding& right : path_bindings) {
        Binding combined = left;
        bool compatible = true;
        for (const auto& [var, value] : right.values) {
          auto it = combined.values.find(var);
          if (it != combined.values.end() && !(it->second == value)) {
            compatible = false;
            break;
          }
          combined.values[var] = value;
        }
        if (compatible) merged.push_back(std::move(combined));
      }
    }
    bindings = std::move(merged);
  }
  return bindings;
}

StatusOr<QueryResult> QueryEngine::Project(
    const Statement& stmt, const std::vector<Binding>& bindings) {
  QueryResult result;
  for (const ReturnItem& item : stmt.returns) {
    result.columns.push_back(item.ColumnName());
  }
  // count(*) aggregates the whole binding set.
  if (stmt.returns.size() == 1 &&
      stmt.returns[0].kind == ReturnItem::Kind::kCountStar) {
    result.rows.push_back({Value(static_cast<int64_t>(bindings.size()))});
    obs::TickCurrentQueryRows();
    return result;
  }
  for (const Binding& binding : bindings) {
    if (obs::CancellationRequested()) {
      return Status::Cancelled("query killed");
    }
    std::vector<Value> row;
    for (const ReturnItem& item : stmt.returns) {
      auto it = binding.values.find(item.variable);
      switch (item.kind) {
        case ReturnItem::Kind::kVariable:
          row.push_back(it == binding.values.end() ? Value() : it->second);
          break;
        case ReturnItem::Kind::kProperty: {
          if (it == binding.values.end()) {
            row.push_back(Value());
            break;
          }
          const graph::PropertyValue* p =
              it->second.is_node()
                  ? it->second.AsNode().props.Get(item.key)
                  : it->second.is_relationship()
                        ? it->second.AsRelationship().props.Get(item.key)
                        : nullptr;
          row.push_back(p == nullptr ? Value() : Value::FromProperty(*p));
          break;
        }
        case ReturnItem::Kind::kId: {
          if (it == binding.values.end()) {
            row.push_back(Value());
          } else if (it->second.is_node()) {
            row.push_back(
                Value(static_cast<int64_t>(it->second.AsNode().id)));
          } else if (it->second.is_relationship()) {
            row.push_back(Value(
                static_cast<int64_t>(it->second.AsRelationship().id)));
          } else {
            row.push_back(Value());
          }
          break;
        }
        case ReturnItem::Kind::kCountStar:
          row.push_back(Value(static_cast<int64_t>(bindings.size())));
          break;
      }
    }
    result.rows.push_back(std::move(row));
    obs::TickCurrentQueryRows();
    if (stmt.limit.has_value() && result.rows.size() >= *stmt.limit) break;
  }
  return result;
}

StatusOr<QueryResult> QueryEngine::ExecuteMatch(const Statement& stmt) {
  if (stmt.patterns.empty() || stmt.returns.empty()) {
    return Status::InvalidArgument("MATCH requires a pattern and RETURN");
  }
  PlanInfo plan;
  {
    ProfileStage plan_stage("Plan", "");
    obs::ScopedLatency plan_latency(metric_plan_);
    plan = PlanStatement(stmt, aion_);
  }
  const bool point_plan =
      aion_ != nullptr &&
      (plan.access == PlanInfo::Access::kPointHistory ||
       (plan.access == PlanInfo::Access::kPointLookup &&
        stmt.time.kind == TimeSpec::Kind::kAsOf));
  if (point_plan) {
    // The point plan routes through AionStore::GetNode: LineageStore when
    // the cascade can serve the window, TimeStore fallback otherwise.
    graph::Timestamp start = 0, end = 0;
    stmt.time.ToWindow(&start, &end);
    if (aion_->LineageCanServe(std::max(start, end))) {
      SetRoute("lineage");
      metric_store_lineage_->Add();
    } else {
      SetRoute("timestore");
      metric_store_timestore_->Add();
    }
    return ExecutePointHistory(stmt, plan);
  }
  // Snapshot (or latest) execution.
  if (stmt.time.kind != TimeSpec::Kind::kLatest &&
      stmt.time.kind != TimeSpec::Kind::kAsOf) {
    return Status::Unimplemented(
        "range queries over patterns: use AS OF per instant or the "
        "temporal procedures (aion.*)");
  }
  if (stmt.time.kind == TimeSpec::Kind::kLatest) {
    SetRoute("latest");
    metric_store_latest_->Add();
  } else {
    SetRoute("timestore");  // AS OF snapshot = TimeStore replay
    metric_store_timestore_->Add();
  }
  StatusOr<std::shared_ptr<const GraphView>> view =
      Status::Internal("view not resolved");
  {
    ProfileStage stage(
        stmt.time.kind == TimeSpec::Kind::kLatest ? "ViewLatest"
                                                  : "SnapshotLoad",
        stmt.time.kind == TimeSpec::Kind::kLatest
            ? ""
            : "t=" + std::to_string(stmt.time.a));
    const uint64_t view_start = obs::NowNanos();
    view = ViewAt(stmt.time);
    // Snapshot-load wall time is a cost-model observation (the same number
    // PROFILE reports for this stage) — it sharpens the TimeStore route's
    // fixed cost in ChooseStoreForExpand.
    if (aion_ != nullptr && view.ok() &&
        stmt.time.kind == TimeSpec::Kind::kAsOf) {
      aion_->cost_model()->ObserveSnapshotLoad(obs::NowNanos() - view_start);
    }
  }
  AION_RETURN_IF_ERROR(view.status());
  std::vector<Binding> bindings;
  {
    ProfileStage stage(plan.anchored_by_id ? "NodeByIdSeek" : "NodeScan",
                       plan.anchored_by_id
                           ? "id=" + std::to_string(plan.anchor_id)
                           : "all nodes");
    AION_ASSIGN_OR_RETURN(bindings, MatchPatterns(stmt, **view));
    stage.set_rows(bindings.size());
    if (tls_profile != nullptr) stage.append_detail(TakeDispatchDetail());
  }
  ProfileStage stage("ProduceResults", "");
  StatusOr<QueryResult> result = Project(stmt, bindings);
  if (result.ok()) stage.set_rows(result->rows.size());
  return result;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

StatusOr<QueryResult> QueryEngine::ExecuteCreate(const Statement& stmt) {
  SetRoute("latest");
  ProfileStage stage("Create", "");
  auto txn = db_->Begin();
  std::map<std::string, NodeId> created;
  for (const PathPattern& path : stmt.patterns) {
    std::vector<NodeId> node_ids;
    for (const NodePattern& node : path.nodes) {
      auto it = created.find(node.variable);
      if (!node.variable.empty() && it != created.end()) {
        node_ids.push_back(it->second);
        continue;
      }
      graph::PropertySet props;
      for (const auto& [key, literal] : node.properties) {
        props.Set(key, literal.ToProperty());
      }
      std::vector<std::string> labels;
      if (!node.label.empty()) labels.push_back(node.label);
      const NodeId id = txn->CreateNode(std::move(labels), std::move(props));
      if (!node.variable.empty()) created[node.variable] = id;
      node_ids.push_back(id);
    }
    for (size_t i = 0; i < path.rels.size(); ++i) {
      const RelPattern& rel = path.rels[i];
      if (rel.hops != 1) {
        return Status::InvalidArgument("CREATE cannot use variable-length");
      }
      const NodeId a = node_ids[i];
      const NodeId b = node_ids[i + 1];
      const NodeId src =
          rel.direction == RelPattern::Direction::kLeft ? b : a;
      const NodeId tgt =
          rel.direction == RelPattern::Direction::kLeft ? a : b;
      txn->CreateRelationship(src, tgt, rel.type.empty() ? "RELATED" : rel.type);
    }
  }
  AION_ASSIGN_OR_RETURN(graph::Timestamp ts, txn->Commit());
  QueryResult result;
  result.columns = {"created", "commit_ts"};
  result.rows.push_back({Value(static_cast<int64_t>(created.size())),
                         Value(static_cast<int64_t>(ts))});
  return result;
}

StatusOr<QueryResult> QueryEngine::ExecuteMatchSet(const Statement& stmt) {
  SetRoute("latest");
  ProfileStage stage("SetProperties", "");
  AION_ASSIGN_OR_RETURN(auto view, ViewAt(TimeSpec{}));
  AION_ASSIGN_OR_RETURN(std::vector<Binding> bindings,
                        MatchPatterns(stmt, *view));
  // Release the latest-view handle before committing so the replica can be
  // mutated in place instead of copy-on-write cloning.
  view.reset();
  auto txn = db_->Begin();
  size_t changes = 0;
  for (const Binding& binding : bindings) {
    for (const SetClause& set : stmt.sets) {
      auto it = binding.values.find(set.variable);
      if (it == binding.values.end()) continue;
      if (it->second.is_node()) {
        txn->SetNodeProperty(it->second.AsNode().id, set.key,
                             set.literal.ToProperty());
        ++changes;
      } else if (it->second.is_relationship()) {
        txn->SetRelationshipProperty(it->second.AsRelationship().id, set.key,
                                     set.literal.ToProperty());
        ++changes;
      }
    }
  }
  QueryResult result;
  result.columns = {"properties_set"};
  if (changes > 0) {
    AION_RETURN_IF_ERROR(txn->Commit().status());
  }
  result.rows.push_back({Value(static_cast<int64_t>(changes))});
  return result;
}

StatusOr<QueryResult> QueryEngine::ExecuteMatchDelete(const Statement& stmt) {
  SetRoute("latest");
  ProfileStage stage(stmt.detach ? "DetachDelete" : "Delete", "");
  AION_ASSIGN_OR_RETURN(auto view, ViewAt(TimeSpec{}));
  AION_ASSIGN_OR_RETURN(std::vector<Binding> bindings,
                        MatchPatterns(stmt, *view));
  auto txn = db_->Begin();
  std::set<NodeId> nodes_to_delete;
  std::set<graph::RelId> rels_to_delete;
  for (const Binding& binding : bindings) {
    for (const std::string& var : stmt.deletes) {
      auto it = binding.values.find(var);
      if (it == binding.values.end()) continue;
      if (it->second.is_node()) {
        nodes_to_delete.insert(it->second.AsNode().id);
      } else if (it->second.is_relationship()) {
        rels_to_delete.insert(it->second.AsRelationship().id);
      }
    }
  }
  if (stmt.detach) {
    // DETACH DELETE: delete incident relationships first (Sec 3 constraint).
    for (NodeId id : nodes_to_delete) {
      view->ForEachRel(id, graph::Direction::kBoth,
                       [&](graph::RelId rel_id) {
                         rels_to_delete.insert(rel_id);
                       });
    }
  }
  for (graph::RelId id : rels_to_delete) txn->DeleteRelationship(id);
  for (NodeId id : nodes_to_delete) txn->DeleteNode(id);
  QueryResult result;
  result.columns = {"nodes_deleted", "relationships_deleted"};
  if (!nodes_to_delete.empty() || !rels_to_delete.empty()) {
    AION_RETURN_IF_ERROR(txn->Commit().status());
  }
  result.rows.push_back(
      {Value(static_cast<int64_t>(nodes_to_delete.size())),
       Value(static_cast<int64_t>(rels_to_delete.size()))});
  return result;
}

StatusOr<QueryResult> QueryEngine::ExecuteCall(const Statement& stmt) {
  SetRoute("-");
  auto it = procedures_.find(stmt.procedure);
  if (it == procedures_.end()) {
    return Status::NotFound("unknown procedure " + stmt.procedure);
  }
  QueryResult result;
  {
    ProfileStage stage("ProcedureCall", stmt.procedure);
    AION_ASSIGN_OR_RETURN(result, it->second(*this, stmt.arguments));
    stage.set_rows(result.rows.size());
    obs::TickCurrentQueryRows(result.rows.size());
  }
  if (stmt.yields.empty()) return result;
  // Column projection per YIELD.
  std::vector<size_t> indices;
  for (const std::string& col : stmt.yields) {
    auto found = std::find(result.columns.begin(), result.columns.end(), col);
    if (found == result.columns.end()) {
      return Status::InvalidArgument("YIELD column not produced: " + col);
    }
    indices.push_back(
        static_cast<size_t>(found - result.columns.begin()));
  }
  QueryResult projected;
  projected.columns = stmt.yields;
  for (const auto& row : result.rows) {
    std::vector<Value> out;
    for (size_t idx : indices) out.push_back(row[idx]);
    projected.rows.push_back(std::move(out));
  }
  return projected;
}

}  // namespace aion::query
