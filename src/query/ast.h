// Abstract syntax for the temporal Cypher subset (Sec 3, Fig 1):
//   [USE db FOR SYSTEM_TIME <spec>] MATCH <pattern> [WHERE ...] RETURN ...
//   CREATE <pattern>
//   MATCH ... SET/DELETE ...
//   CALL proc(args) [YIELD cols]
#ifndef AION_QUERY_AST_H_
#define AION_QUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/property.h"
#include "graph/types.h"

namespace aion::query {

/// FOR SYSTEM_TIME interval specifier (Sec 3): the four interval forms with
/// their inclusivity conventions.
struct TimeSpec {
  enum class Kind {
    kLatest,       // no USE clause: current graph
    kAsOf,         // AS OF t           -> point [t]
    kFromTo,       // FROM a TO b       -> (a, b) exclusive both
    kBetween,      // BETWEEN a AND b   -> [a, b) inclusive-exclusive
    kContainedIn,  // CONTAINED IN (a, b) -> [a, b] inclusive both
  };
  Kind kind = Kind::kLatest;
  graph::Timestamp a = 0;
  graph::Timestamp b = 0;

  /// Normalizes to a half-open system-time window [start, end); kAsOf gives
  /// [t, t] as (t, t) with start == end which the stores treat as a point.
  void ToWindow(graph::Timestamp* start, graph::Timestamp* end) const {
    switch (kind) {
      case Kind::kLatest:
      case Kind::kAsOf:
        *start = a;
        *end = a;
        break;
      case Kind::kFromTo:
        *start = a + 1;
        *end = b;
        break;
      case Kind::kBetween:
        *start = a;
        *end = b;
        break;
      case Kind::kContainedIn:
        *start = a;
        *end = b == graph::kInfiniteTime ? b : b + 1;
        break;
    }
  }
};

/// Literal values appearing in queries.
struct Literal {
  enum class Kind { kNull, kBool, kInt, kDouble, kString };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;

  graph::PropertyValue ToProperty() const {
    switch (kind) {
      case Kind::kNull:
        return graph::PropertyValue();
      case Kind::kBool:
        return graph::PropertyValue(bool_value);
      case Kind::kInt:
        return graph::PropertyValue(int_value);
      case Kind::kDouble:
        return graph::PropertyValue(double_value);
      case Kind::kString:
        return graph::PropertyValue(string_value);
    }
    return graph::PropertyValue();
  }
};

/// (var:Label {key: literal, ...})
struct NodePattern {
  std::string variable;  // may be empty
  std::string label;     // may be empty
  std::vector<std::pair<std::string, Literal>> properties;
};

/// -[var:TYPE*hops]-> / <-[...]- / -[...]-
struct RelPattern {
  enum class Direction { kRight, kLeft, kUndirected };
  std::string variable;
  std::string type;  // may be empty
  uint32_t hops = 1;
  Direction direction = Direction::kRight;
};

/// Linear path pattern: n0 r0 n1 r1 n2 ...
struct PathPattern {
  std::vector<NodePattern> nodes;
  std::vector<RelPattern> rels;
};

/// WHERE predicates (conjunctive only).
struct Predicate {
  enum class Kind {
    kIdEquals,          // id(var) = int
    kPropertyCompare,   // var.key OP literal
    kApplicationTime,   // APPLICATION_TIME CONTAINED IN (a, b)
  };
  enum class Op { kEq, kNeq, kLt, kLte, kGt, kGte };
  Kind kind = Kind::kIdEquals;
  std::string variable;
  std::string key;
  Op op = Op::kEq;
  Literal literal;
  graph::Timestamp app_a = 0;
  graph::Timestamp app_b = 0;
};

/// RETURN item: variable, variable.property, id(variable), or count(*).
struct ReturnItem {
  enum class Kind { kVariable, kProperty, kId, kCountStar };
  Kind kind = Kind::kVariable;
  std::string variable;
  std::string key;
  std::string alias;  // output column name

  std::string ColumnName() const {
    if (!alias.empty()) return alias;
    switch (kind) {
      case Kind::kVariable:
        return variable;
      case Kind::kProperty:
        return variable + "." + key;
      case Kind::kId:
        return "id(" + variable + ")";
      case Kind::kCountStar:
        return "count(*)";
    }
    return "?";
  }
};

/// SET var.key = literal
struct SetClause {
  std::string variable;
  std::string key;
  Literal literal;
};

/// A parsed statement.
struct Statement {
  enum class Kind { kMatch, kCreate, kMatchSet, kMatchDelete, kCall };
  Kind kind = Kind::kMatch;

  /// EXPLAIN/PROFILE prefix. kExplain describes the plan without executing
  /// (even for writes); kProfile executes and returns per-operator rows,
  /// store probes, and wall nanos instead of the query's own rows.
  enum class Mode { kRegular, kExplain, kProfile };
  Mode mode = Mode::kRegular;

  TimeSpec time;                 // USE ... FOR SYSTEM_TIME
  std::vector<PathPattern> patterns;   // MATCH or CREATE patterns
  std::vector<Predicate> predicates;   // WHERE (conjunction)
  std::vector<ReturnItem> returns;     // RETURN
  std::optional<size_t> limit;

  std::vector<SetClause> sets;          // MATCH-SET
  std::vector<std::string> deletes;     // MATCH-DELETE variables
  bool detach = false;                  // DETACH DELETE

  std::string procedure;                // CALL name
  std::vector<Literal> arguments;       // CALL args
  std::vector<std::string> yields;      // YIELD columns (empty = all)
};

}  // namespace aion::query

#endif  // AION_QUERY_AST_H_
