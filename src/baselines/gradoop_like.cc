#include "baselines/gradoop_like.h"

#include <unordered_set>

#include "util/logging.h"

namespace aion::baselines {

using graph::Direction;
using graph::GraphUpdate;
using graph::kInfiniteTime;
using graph::Node;
using graph::NodeId;
using graph::Relationship;
using graph::RelId;
using graph::Timestamp;
using graph::UpdateOp;
using util::Status;

GradoopLike::NodeRow* GradoopLike::OpenNodeRow(NodeId id) {
  // Model-based stores have no id index: find the open row by scanning.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    if (it->state.id == id && it->valid.end == kInfiniteTime) return &*it;
  }
  return nullptr;
}

GradoopLike::RelRow* GradoopLike::OpenRelRow(RelId id) {
  for (auto it = rels_.rbegin(); it != rels_.rend(); ++it) {
    if (it->state.id == id && it->valid.end == kInfiniteTime) return &*it;
  }
  return nullptr;
}

Status GradoopLike::Ingest(const GraphUpdate& u) {
  switch (u.op) {
    case UpdateOp::kAddNode: {
      NodeRow row;
      row.valid = {u.ts, kInfiniteTime};
      row.state.id = u.id;
      row.state.labels = u.labels;
      row.state.props = u.props;
      nodes_.push_back(std::move(row));
      return Status::OK();
    }
    case UpdateOp::kDeleteNode: {
      NodeRow* open = OpenNodeRow(u.id);
      if (open == nullptr) return Status::FailedPrecondition("node not live");
      open->valid.end = u.ts;
      return Status::OK();
    }
    case UpdateOp::kAddRelationship: {
      RelRow row;
      row.valid = {u.ts, kInfiniteTime};
      row.state.id = u.id;
      row.state.src = u.src;
      row.state.tgt = u.tgt;
      row.state.type = u.type;
      row.state.props = u.props;
      rels_.push_back(std::move(row));
      return Status::OK();
    }
    case UpdateOp::kDeleteRelationship: {
      RelRow* open = OpenRelRow(u.id);
      if (open == nullptr) {
        return Status::FailedPrecondition("relationship not live");
      }
      open->valid.end = u.ts;
      return Status::OK();
    }
    case UpdateOp::kSetNodeProperty:
    case UpdateOp::kRemoveNodeProperty:
    case UpdateOp::kAddNodeLabel:
    case UpdateOp::kRemoveNodeLabel: {
      NodeRow* open = OpenNodeRow(u.id);
      if (open == nullptr) return Status::FailedPrecondition("node not live");
      NodeRow next;
      next.valid = {u.ts, kInfiniteTime};
      next.state = open->state;
      switch (u.op) {
        case UpdateOp::kSetNodeProperty:
          next.state.props.Set(u.key, u.value);
          break;
        case UpdateOp::kRemoveNodeProperty:
          next.state.props.Remove(u.key);
          break;
        case UpdateOp::kAddNodeLabel:
          next.state.AddLabel(u.label);
          break;
        case UpdateOp::kRemoveNodeLabel:
          next.state.RemoveLabel(u.label);
          break;
        default:
          break;
      }
      if (open->valid.start == u.ts) {
        // Same-instant change: replace in place to keep intervals valid.
        open->state = std::move(next.state);
      } else {
        open->valid.end = u.ts;
        nodes_.push_back(std::move(next));
      }
      return Status::OK();
    }
    case UpdateOp::kSetRelationshipProperty:
    case UpdateOp::kRemoveRelationshipProperty: {
      RelRow* open = OpenRelRow(u.id);
      if (open == nullptr) {
        return Status::FailedPrecondition("relationship not live");
      }
      RelRow next;
      next.valid = {u.ts, kInfiniteTime};
      next.state = open->state;
      if (u.op == UpdateOp::kSetRelationshipProperty) {
        next.state.props.Set(u.key, u.value);
      } else {
        next.state.props.Remove(u.key);
      }
      if (open->valid.start == u.ts) {
        open->state = std::move(next.state);
      } else {
        open->valid.end = u.ts;
        rels_.push_back(std::move(next));
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown update op");
}

Status GradoopLike::IngestAll(const std::vector<GraphUpdate>& updates) {
  for (const GraphUpdate& u : updates) {
    AION_RETURN_IF_ERROR(Ingest(u));
  }
  return Status::OK();
}

std::optional<Relationship> GradoopLike::GetRelationshipAt(
    RelId id, Timestamp t) const {
  // Full table scan (no index in the model-based approach).
  const RelRow* match = nullptr;
  for (const RelRow& row : rels_) {
    if (row.state.id == id && row.valid.Contains(t)) match = &row;
  }
  if (match == nullptr) return std::nullopt;
  return match->state;
}

std::optional<Node> GradoopLike::GetNodeAt(NodeId id, Timestamp t) const {
  const NodeRow* match = nullptr;
  for (const NodeRow& row : nodes_) {
    if (row.state.id == id && row.valid.Contains(t)) match = &row;
  }
  if (match == nullptr) return std::nullopt;
  return match->state;
}

std::unique_ptr<graph::MemoryGraph> GradoopLike::SnapshotAt(
    Timestamp t) const {
  auto snapshot = std::make_unique<graph::MemoryGraph>();
  // Phase 1: scan + filter the node table.
  std::unordered_set<NodeId> valid_nodes;
  for (const NodeRow& row : nodes_) {
    if (row.valid.Contains(t)) {
      valid_nodes.insert(row.state.id);
      AION_CHECK_OK(snapshot->Apply(GraphUpdate::AddNode(
          row.state.id, row.state.labels, row.state.props)));
    }
  }
  // Phase 2: scan + filter the relationship table into a materialized
  // candidate collection (Gradoop's dataflow materializes between
  // transformations).
  std::vector<RelRow> candidate_rels;
  for (const RelRow& row : rels_) {
    if (row.valid.Contains(t)) candidate_rels.push_back(row);
  }
  // Phase 3: the dangling-relationship verification — "two parallel join
  // transformations required to remove dangling relationships" (Sec 6.2),
  // each producing a materialized intermediate. The paper attributes ~80%
  // of Gradoop's snapshot time to this step.
  std::vector<RelRow> src_joined;
  src_joined.reserve(candidate_rels.size());
  for (RelRow& row : candidate_rels) {
    if (valid_nodes.count(row.state.src) > 0) {
      src_joined.push_back(std::move(row));
    }
  }
  std::vector<RelRow> fully_joined;
  fully_joined.reserve(src_joined.size());
  for (RelRow& row : src_joined) {
    if (valid_nodes.count(row.state.tgt) > 0) {
      fully_joined.push_back(std::move(row));
    }
  }
  for (const RelRow& row : fully_joined) {
    AION_CHECK_OK(snapshot->Apply(GraphUpdate::AddRelationship(
        row.state.id, row.state.src, row.state.tgt, row.state.type,
        row.state.props)));
  }
  return snapshot;
}

std::vector<NodeId> GradoopLike::NeighboursAt(NodeId id, Direction direction,
                                              Timestamp t) const {
  std::vector<NodeId> result;
  for (const RelRow& row : rels_) {
    if (!row.valid.Contains(t)) continue;
    if ((direction == Direction::kOutgoing ||
         direction == Direction::kBoth) &&
        row.state.src == id) {
      result.push_back(row.state.tgt);
    }
    if ((direction == Direction::kIncoming ||
         direction == Direction::kBoth) &&
        row.state.tgt == id) {
      result.push_back(row.state.src);
    }
  }
  return result;
}

size_t GradoopLike::EstimateMemoryBytes() const {
  return nodes_.size() * 96 + rels_.size() * 112;
}

}  // namespace aion::baselines
