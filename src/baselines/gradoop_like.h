// GradoopLike: a stand-in for Gradoop's model-based temporal storage
// (Sec 2.2, Sec 6.2, Table 4):
//  * graph history lives in flat node/relationship tables whose rows carry
//    validity intervals (the "temporal table" encoding of the model-based
//    approach); property/label changes close the old row and append a new
//    one;
//  * every query — even a single-relationship lookup — scans the tables
//    (cost |U_R| for point reads, |U| for snapshots);
//  * snapshot extraction performs scan+filter over both tables followed by
//    the dangling-relationship verification join, which the paper measures
//    at ~80% of Gradoop's snapshot time.
#ifndef AION_BASELINES_GRADOOP_LIKE_H_
#define AION_BASELINES_GRADOOP_LIKE_H_

#include <memory>
#include <optional>
#include <vector>

#include "graph/memgraph.h"
#include "graph/update.h"
#include "util/status.h"

namespace aion::baselines {

class GradoopLike {
 public:
  GradoopLike() = default;

  util::Status Ingest(const graph::GraphUpdate& update);
  util::Status IngestAll(const std::vector<graph::GraphUpdate>& updates);

  /// Point lookup by full relationship-table scan (Table 4: |U_R|).
  std::optional<graph::Relationship> GetRelationshipAt(graph::RelId id,
                                                       graph::Timestamp t) const;
  std::optional<graph::Node> GetNodeAt(graph::NodeId id,
                                       graph::Timestamp t) const;

  /// Snapshot via scan + filter + dangling-edge verification join.
  std::unique_ptr<graph::MemoryGraph> SnapshotAt(graph::Timestamp t) const;

  /// Neighbours via relationship-table scan.
  std::vector<graph::NodeId> NeighboursAt(graph::NodeId id,
                                          graph::Direction direction,
                                          graph::Timestamp t) const;

  size_t node_rows() const { return nodes_.size(); }
  size_t rel_rows() const { return rels_.size(); }
  size_t EstimateMemoryBytes() const;

 private:
  struct NodeRow {
    graph::TimeInterval valid;
    graph::Node state;
  };
  struct RelRow {
    graph::TimeInterval valid;
    graph::Relationship state;
  };

  NodeRow* OpenNodeRow(graph::NodeId id);
  RelRow* OpenRelRow(graph::RelId id);

  std::vector<NodeRow> nodes_;
  std::vector<RelRow> rels_;
};

}  // namespace aion::baselines

#endif  // AION_BASELINES_GRADOOP_LIKE_H_
