#include "baselines/raphtory_like.h"

#include <algorithm>
#include <deque>
#include <set>

#include "util/logging.h"

namespace aion::baselines {

using graph::Direction;
using graph::GraphUpdate;
using graph::Node;
using graph::NodeId;
using graph::Relationship;
using graph::RelId;
using graph::Timestamp;
using graph::UpdateOp;
using util::Status;

Status RaphtoryLike::Ingest(const GraphUpdate& u) {
  auto ensure_node = [this](NodeId id) {
    if (id >= node_histories_.size()) {
      node_histories_.resize(id + 1);
      out_.resize(id + 1);
      in_.resize(id + 1);
    }
  };
  switch (u.op) {
    case UpdateOp::kAddNode: {
      ensure_node(u.id);
      Node node;
      node.id = u.id;
      node.labels = u.labels;
      node.props = u.props;
      node_histories_[u.id].push_back({u.ts, false, std::move(node)});
      return Status::OK();
    }
    case UpdateOp::kDeleteNode: {
      ensure_node(u.id);
      node_histories_[u.id].push_back({u.ts, true, {}});
      return Status::OK();
    }
    case UpdateOp::kAddRelationship: {
      ensure_node(u.src);
      ensure_node(u.tgt);
      const auto pair = std::make_pair(u.src, u.tgt);
      if (live_pairs_.count(pair) > 0) {
        ++dropped_;  // no multigraph support
        return Status::OK();
      }
      if (u.id >= rel_histories_.size()) rel_histories_.resize(u.id + 1);
      Relationship rel;
      rel.id = u.id;
      rel.src = u.src;
      rel.tgt = u.tgt;
      rel.type = u.type;
      rel.props = u.props;
      rel_histories_[u.id].push_back({u.ts, false, std::move(rel)});
      out_[u.src].push_back(u.id);
      in_[u.tgt].push_back(u.id);
      live_pairs_[pair] = u.id;
      return Status::OK();
    }
    case UpdateOp::kDeleteRelationship: {
      if (u.id >= rel_histories_.size() || rel_histories_[u.id].empty()) {
        return Status::OK();  // possibly a dropped parallel edge
      }
      const Relationship& last = rel_histories_[u.id].back().state;
      live_pairs_.erase(std::make_pair(last.src, last.tgt));
      rel_histories_[u.id].push_back({u.ts, true, {}});
      return Status::OK();
    }
    case UpdateOp::kSetNodeProperty:
    case UpdateOp::kRemoveNodeProperty:
    case UpdateOp::kAddNodeLabel:
    case UpdateOp::kRemoveNodeLabel: {
      ensure_node(u.id);
      auto& history = node_histories_[u.id];
      if (history.empty() || history.back().deleted) {
        return Status::FailedPrecondition("node not live");
      }
      Node next = history.back().state;
      switch (u.op) {
        case UpdateOp::kSetNodeProperty:
          next.props.Set(u.key, u.value);
          break;
        case UpdateOp::kRemoveNodeProperty:
          next.props.Remove(u.key);
          break;
        case UpdateOp::kAddNodeLabel:
          next.AddLabel(u.label);
          break;
        case UpdateOp::kRemoveNodeLabel:
          next.RemoveLabel(u.label);
          break;
        default:
          break;
      }
      history.push_back({u.ts, false, std::move(next)});
      return Status::OK();
    }
    case UpdateOp::kSetRelationshipProperty:
    case UpdateOp::kRemoveRelationshipProperty: {
      if (u.id >= rel_histories_.size() || rel_histories_[u.id].empty() ||
          rel_histories_[u.id].back().deleted) {
        return Status::OK();  // dropped parallel edge
      }
      auto& history = rel_histories_[u.id];
      Relationship next = history.back().state;
      if (u.op == UpdateOp::kSetRelationshipProperty) {
        next.props.Set(u.key, u.value);
      } else {
        next.props.Remove(u.key);
      }
      history.push_back({u.ts, false, std::move(next)});
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown update op");
}

Status RaphtoryLike::IngestAll(const std::vector<GraphUpdate>& updates) {
  for (const GraphUpdate& u : updates) {
    AION_RETURN_IF_ERROR(Ingest(u));
  }
  return Status::OK();
}

bool RaphtoryLike::NodeVisibleAt(NodeId id, Timestamp t) const {
  if (id >= node_histories_.size()) return false;
  // Linear scan, as Raphtory does per the paper ("expensive checks ... to
  // validate whether graph entities are visible at a specific timestamp").
  bool visible = false;
  for (const NodeEvent& e : node_histories_[id]) {
    if (e.ts > t) break;
    visible = !e.deleted;
  }
  return visible;
}

std::optional<Node> RaphtoryLike::GetNodeAt(NodeId id, Timestamp t) const {
  if (id >= node_histories_.size()) return std::nullopt;
  const Node* state = nullptr;
  for (const NodeEvent& e : node_histories_[id]) {
    if (e.ts > t) break;
    state = e.deleted ? nullptr : &e.state;
  }
  if (state == nullptr) return std::nullopt;
  return *state;
}

std::optional<Relationship> RaphtoryLike::GetRelationshipAt(
    RelId id, Timestamp t) const {
  if (id >= rel_histories_.size()) return std::nullopt;
  const Relationship* state = nullptr;
  for (const RelEvent& e : rel_histories_[id]) {
    if (e.ts > t) break;
    state = e.deleted ? nullptr : &e.state;
  }
  if (state == nullptr) return std::nullopt;
  // Raphtory's visibility validation: scan the endpoints' relationship
  // updates (2|U_R^n| cost, Table 4). Emulated faithfully: touch both
  // endpoint adjacency vectors and their validity.
  size_t touched = 0;
  for (RelId r : out_[state->src]) {
    touched += r == id ? 1 : 0;
  }
  for (RelId r : in_[state->tgt]) {
    touched += r == id ? 1 : 0;
  }
  if (touched == 0) return std::nullopt;  // defensive; cannot happen
  if (!NodeVisibleAt(state->src, t) || !NodeVisibleAt(state->tgt, t)) {
    return std::nullopt;
  }
  return *state;
}

std::vector<NodeId> RaphtoryLike::NeighboursAt(NodeId id, Direction direction,
                                               Timestamp t) const {
  std::vector<NodeId> result;
  if (id >= node_histories_.size() || !NodeVisibleAt(id, t)) return result;
  auto scan = [&](const std::vector<RelId>& rels, bool outgoing) {
    for (RelId rel_id : rels) {
      const Relationship* state = nullptr;
      for (const RelEvent& e : rel_histories_[rel_id]) {
        if (e.ts > t) break;
        state = e.deleted ? nullptr : &e.state;
      }
      if (state == nullptr) continue;
      const NodeId nbr = outgoing ? state->tgt : state->src;
      if (NodeVisibleAt(nbr, t)) result.push_back(nbr);
    }
  };
  if (direction == Direction::kOutgoing || direction == Direction::kBoth) {
    scan(out_[id], true);
  }
  if (direction == Direction::kIncoming || direction == Direction::kBoth) {
    scan(in_[id], false);
  }
  return result;
}

std::vector<std::vector<NodeId>> RaphtoryLike::Expand(NodeId id,
                                                      Direction direction,
                                                      uint32_t hops,
                                                      Timestamp t) const {
  std::vector<std::vector<NodeId>> result;
  std::deque<NodeId> queue = {id};
  for (uint32_t hop = 1; hop <= hops; ++hop) {
    std::set<NodeId> level;
    const size_t qsize = queue.size();
    for (size_t i = 0; i < qsize; ++i) {
      const NodeId current = queue.front();
      queue.pop_front();
      for (NodeId nbr : NeighboursAt(current, direction, t)) {
        if (level.insert(nbr).second) queue.push_back(nbr);
      }
    }
    result.emplace_back(level.begin(), level.end());
    if (queue.empty()) break;
  }
  result.resize(hops);
  return result;
}

std::unique_ptr<graph::MemoryGraph> RaphtoryLike::SnapshotAt(
    Timestamp t) const {
  // All-history scan: every node and relationship history is filtered by t.
  auto snapshot = std::make_unique<graph::MemoryGraph>();
  for (NodeId id = 0; id < node_histories_.size(); ++id) {
    const Node* state = nullptr;
    for (const NodeEvent& e : node_histories_[id]) {
      if (e.ts > t) break;
      state = e.deleted ? nullptr : &e.state;
    }
    if (state != nullptr) {
      AION_CHECK_OK(snapshot->Apply(
          GraphUpdate::AddNode(state->id, state->labels, state->props)));
    }
  }
  for (RelId id = 0; id < rel_histories_.size(); ++id) {
    const Relationship* state = nullptr;
    for (const RelEvent& e : rel_histories_[id]) {
      if (e.ts > t) break;
      state = e.deleted ? nullptr : &e.state;
    }
    if (state != nullptr && NodeVisibleAt(state->src, t) &&
        NodeVisibleAt(state->tgt, t)) {
      AION_CHECK_OK(snapshot->Apply(GraphUpdate::AddRelationship(
          state->id, state->src, state->tgt, state->type, state->props)));
    }
  }
  return snapshot;
}

size_t RaphtoryLike::EstimateMemoryBytes() const {
  size_t total = 0;
  for (const auto& h : node_histories_) total += h.size() * 96;
  for (const auto& h : rel_histories_) total += h.size() * 112;
  for (const auto& v : out_) total += v.size() * 8;
  for (const auto& v : in_) total += v.size() * 8;
  return total;
}

}  // namespace aion::baselines
