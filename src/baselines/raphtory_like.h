// RaphtoryLike: a faithful stand-in for Raphtory's fine-grained in-memory
// temporal storage (Sec 2.2, Sec 6.2, Table 4):
//  * the complete graph history lives in memory as per-entity update
//    vectors (key = entity id, value = that entity's history);
//  * ingestion is a stream of updates without transactions;
//  * point reads are constant-time array accesses followed by timestamp
//    filtering, BUT validity requires scanning the endpoint nodes'
//    relationship updates (cost 2|U_R^n| per lookup, Table 4);
//  * snapshot extraction is an all-history scan (cost |U|);
//  * no multigraph support: parallel relationships between the same source
//    and target are dropped at load (the paper observes Raphtory loading
//    only 42% / 79% of WikiTalk / DBPedia edges because of this);
//  * not persistent: no out-of-core support, no recovery.
#ifndef AION_BASELINES_RAPHTORY_LIKE_H_
#define AION_BASELINES_RAPHTORY_LIKE_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "graph/memgraph.h"
#include "graph/update.h"
#include "util/status.h"

namespace aion::baselines {

class RaphtoryLike {
 public:
  RaphtoryLike() = default;

  /// Streams one update into the store. Parallel relationships (same
  /// (src, tgt) as an existing live one) are silently dropped (no
  /// multigraph support); the drop counter records how many.
  util::Status Ingest(const graph::GraphUpdate& update);
  util::Status IngestAll(const std::vector<graph::GraphUpdate>& updates);

  /// Point lookup with Raphtory's cost model: reconstructs the relationship
  /// at `t` by scanning its own history, then validates both endpoints by
  /// linearly scanning their relationship updates (2|U_R^n|).
  std::optional<graph::Relationship> GetRelationshipAt(graph::RelId id,
                                                       graph::Timestamp t) const;

  std::optional<graph::Node> GetNodeAt(graph::NodeId id,
                                       graph::Timestamp t) const;

  /// Neighbour node ids live at `t` (linear scan of the node's adjacency
  /// history with per-entry validity checks).
  std::vector<graph::NodeId> NeighboursAt(graph::NodeId id,
                                          graph::Direction direction,
                                          graph::Timestamp t) const;

  /// n-hop expansion at `t` (per-hop dedup, like Alg 1).
  std::vector<std::vector<graph::NodeId>> Expand(graph::NodeId id,
                                                 graph::Direction direction,
                                                 uint32_t hops,
                                                 graph::Timestamp t) const;

  /// Full snapshot at `t`: the all-history scan + filter the paper measures
  /// for global queries.
  std::unique_ptr<graph::MemoryGraph> SnapshotAt(graph::Timestamp t) const;

  size_t num_nodes_ever() const { return node_histories_.size(); }
  size_t num_rels_ever() const { return rel_histories_.size(); }
  uint64_t dropped_parallel_edges() const { return dropped_; }

  /// Rough in-memory footprint (Table 4: space |U|).
  size_t EstimateMemoryBytes() const;

 private:
  struct NodeEvent {
    graph::Timestamp ts;
    bool deleted;
    graph::Node state;  // state after the event (empty when deleted)
  };
  struct RelEvent {
    graph::Timestamp ts;
    bool deleted;
    graph::Relationship state;
  };

  bool NodeVisibleAt(graph::NodeId id, graph::Timestamp t) const;

  // Per-entity histories, indexed by id (grown on demand).
  std::vector<std::vector<NodeEvent>> node_histories_;
  std::vector<std::vector<RelEvent>> rel_histories_;
  // All-history adjacency: rel ids ever incident to each node.
  std::vector<std::vector<graph::RelId>> out_;
  std::vector<std::vector<graph::RelId>> in_;
  // Multigraph rejection: live (src, tgt) pairs -> rel id.
  std::map<std::pair<graph::NodeId, graph::NodeId>, graph::RelId> live_pairs_;
  uint64_t dropped_ = 0;
};

}  // namespace aion::baselines

#endif  // AION_BASELINES_RAPHTORY_LIKE_H_
